//! The machine: spawn `P` rank threads, run a closure on each, collect
//! results, statistics and peak memory.
//!
//! [`Machine::try_run`] is the non-panicking entry point: it aggregates
//! *every* rank failure (fault-injected crash, deadlock trap, memory
//! over-commit, user panic) into one [`RunError`] carrying rank ids and
//! the fault seed, so callers can implement recovery (see
//! checkpoint/restart in `distconv-core`). [`Machine::run`] is the
//! panicking convenience wrapper; its panic message enumerates every
//! failed rank, since multi-rank failures are the common case under
//! collectives.

use crate::channel::unbounded;
use crate::detect::{classify_failed_run, detect_stragglers, Detection, DetectorConfig};
use crate::event::{Backend, ComputeModel, EventScheduler};
use crate::fault::{FaultPlan, CRASH_MARKER};
use crate::memory::MemoryTracker;
use crate::rank::{Msg, Packet, Rank, RankId};
use crate::stats::{CostParams, Stats, StatsSnapshot, TimingSnapshot};
use distconv_trace::{RunTrace, SpanEvent, SpanKind, TraceConfig, Tracer};
use std::sync::Arc;
use std::time::Duration;

/// Machine-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Per-rank memory capacity in elements (`None` = unmetered).
    pub mem_capacity: Option<u64>,
    /// Deadlock-trap timeout for blocking receives.
    pub recv_timeout: Duration,
    /// α–β parameters for simulated-time reporting.
    pub cost: CostParams,
    /// Deterministic fault-injection plan (default: all-zero no-op —
    /// the transport takes the exact fault-free code path).
    pub faults: FaultPlan,
    /// Real-time link emulation (default: off — delivery is
    /// memcpy-fast and all α–β costs stay analytic).
    pub link: LinkDelay,
    /// Structured span tracing (default: on, per-rank ring buffers;
    /// see `distconv_trace`).
    pub trace: TraceConfig,
    /// Execution backend (default: thread-per-rank, overridable via
    /// `DISTCONV_BACKEND`; see [`crate::event`]).
    pub backend: Backend,
    /// Virtual-clock charge for compute sections (default: off — the
    /// clock is pure α–β communication time).
    pub compute: ComputeModel,
    /// Virtual-time failure detector (default: off — see
    /// [`crate::detect`]).
    pub detector: DetectorConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mem_capacity: None,
            recv_timeout: Duration::from_secs(30),
            cost: CostParams::default(),
            faults: FaultPlan::default(),
            link: LinkDelay::default(),
            trace: TraceConfig::default(),
            backend: Backend::from_env(),
            compute: ComputeModel::default(),
            detector: DetectorConfig::default(),
        }
    }
}

/// Optional *wall-clock* α–β link emulation: each delivered payload is
/// held at the receiver until `alpha + beta·n` of real time has passed
/// since it went on the wire.
///
/// The in-process transport is otherwise memcpy-fast, which makes the
/// wire and the compute contend for the *same* resource (host memory
/// bandwidth) — on such a machine overlap cannot win by construction.
/// This knob models a network interface that runs beside the cores:
/// the delay elapses concurrently with whatever the receiving rank does
/// between post and wait, so a pipelined executor genuinely hides it.
/// Off by default; results, counters, Lamport clocks and the fault
/// machinery are unaffected either way (the hold happens after the
/// packet is matched, on content that is already final).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkDelay {
    /// Per-message latency.
    pub alpha: Duration,
    /// Per-element transfer time, nanoseconds.
    pub beta_ns_per_elem: f64,
}

impl LinkDelay {
    /// An α–β wall-clock link.
    pub fn new(alpha: Duration, beta_ns_per_elem: f64) -> Self {
        LinkDelay {
            alpha,
            beta_ns_per_elem,
        }
    }

    /// True for the default (no emulation — the exact legacy path).
    pub fn is_off(&self) -> bool {
        self.alpha.is_zero() && self.beta_ns_per_elem <= 0.0
    }

    /// Wire time of an `n`-element message.
    pub fn wire_time(&self, n: usize) -> Duration {
        self.alpha + Duration::from_nanos((self.beta_ns_per_elem * n as f64) as u64)
    }

    /// The same α–β line expressed as [`CostParams`]: the bridge from
    /// wall-clock link emulation (thread backend) to the virtual clock
    /// (event backend), so one network description drives both.
    pub fn cost_params(&self) -> CostParams {
        CostParams {
            alpha: self.alpha.as_secs_f64(),
            beta: self.beta_ns_per_elem * 1e-9,
        }
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank return values, indexed by rank id.
    pub results: Vec<R>,
    /// Communication counters for the whole run.
    pub stats: StatsSnapshot,
    /// Per-rank peak live memory (elements) — compare against Eq. 11.
    pub peak_mem: Vec<u64>,
    /// Simulated communication time under the configured α–β model:
    /// the per-rank volume-based estimate (`max_r α·msgs_r + β·elems_r`).
    pub sim_time: f64,
    /// Lamport makespan: the largest per-rank logical clock at exit.
    /// Unlike `sim_time`, this respects the *dependency structure* of
    /// the schedule (tree depths, serialized shifts), making it the
    /// better who-wins metric for latency-sensitive comparisons.
    pub makespan: f64,
    /// Wall-clock comm-wait/compute breakdown, summed over ranks.
    /// Host-dependent — reported for benching, never for correctness.
    pub timing: TimingSnapshot,
    /// Per-rank structured span trace (empty when tracing is disabled).
    /// Wall-clock fields are host-dependent; the canonical view
    /// (`RunTrace::canonical`) is deterministic.
    pub trace: RunTrace,
    /// Failure-detector verdicts on a run that *finished* (stragglers
    /// only — a crash fails the run). Empty with the detector disabled.
    pub detections: Vec<Detection>,
}

impl<R> RunReport<R> {
    /// Largest per-rank peak memory.
    pub fn max_peak_mem(&self) -> u64 {
        self.peak_mem.iter().copied().max().unwrap_or(0)
    }
}

/// How a rank died, classified from its panic payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A fault-injected crash (see [`crate::fault::CrashAt`]).
    Crash,
    /// The deadlock trap fired: a receive starved past the timeout.
    Deadlock,
    /// Memory capacity exceeded.
    OutOfMemory,
    /// The deadlock trap fired, but a crashed peer explains the
    /// silence: this rank starved waiting on a corpse, it did not
    /// deadlock. Only produced with the failure detector enabled —
    /// with it off, classification is textual and these ranks report
    /// [`FailureKind::Deadlock`], exactly as before the detector
    /// existed.
    Starved,
    /// Any other panic out of the rank body.
    Other,
}

/// One rank's failure: id, classification and the original panic text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankFailure {
    /// The rank that failed.
    pub rank: RankId,
    /// Failure classification (from the panic message).
    pub kind: FailureKind,
    /// The original panic payload, verbatim.
    pub message: String,
}

/// Aggregate of every rank failure in one run, with the fault seed for
/// replay. `Display` lists all of them — no failure is swallowed.
#[derive(Clone, Debug, PartialEq)]
pub struct RunError {
    /// Every failed rank, sorted by rank id.
    pub failures: Vec<RankFailure>,
    /// The fault seed the machine ran with (replay handle).
    pub fault_seed: u64,
    /// Messages recorded before the run died — the wasted (retry) cost
    /// a checkpoint/restart layer must account for.
    pub wasted_msgs: u64,
    /// Elements recorded before the run died.
    pub wasted_elems: u64,
    /// Failure-detector verdicts with simulated-time timestamps (empty
    /// with the detector disabled — the default).
    pub detections: Vec<Detection>,
}

impl RunError {
    /// True iff at least one failure is a fault-injected crash — the
    /// transient kind that checkpoint/restart recovery can retry.
    pub fn has_injected_crash(&self) -> bool {
        self.failures.iter().any(|f| f.kind == FailureKind::Crash)
    }

    /// Ids of all failed ranks.
    pub fn failed_ranks(&self) -> Vec<RankId> {
        self.failures.iter().map(|f| f.rank).collect()
    }

    /// Ids of the ranks that actually *died* (crashed / OOMed /
    /// panicked), excluding ranks that merely starved waiting on them —
    /// the set the degraded-recovery layer must replace, as opposed to
    /// the starved ranks it can simply restart.
    pub fn dead_ranks(&self) -> Vec<RankId> {
        self.failures
            .iter()
            .filter(|f| !matches!(f.kind, FailureKind::Deadlock | FailureKind::Starved))
            .map(|f| f.rank)
            .collect()
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rank(s) failed (fault seed {:#x}):",
            self.failures.len(),
            self.fault_seed
        )?;
        for fail in &self.failures {
            write!(
                f,
                "\n  rank {} [{:?}]: {}",
                fail.rank, fail.kind, fail.message
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for RunError {}

/// Render a panic payload for aggregation (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn classify(message: &str) -> FailureKind {
    if message.contains(CRASH_MARKER) {
        FailureKind::Crash
    } else if message.contains("deadlock trap") || message.contains("mailbox disconnected") {
        FailureKind::Deadlock
    } else if message.contains("out of memory") {
        FailureKind::OutOfMemory
    } else {
        FailureKind::Other
    }
}

/// The simulated distributed-memory machine.
pub struct Machine;

impl Machine {
    /// Run `body` on `p` ranks (one OS thread each) and collect results.
    ///
    /// Rank threads communicate only through their [`Rank`] handles.
    /// Every rank failure is collected — a failed run returns a
    /// [`RunError`] enumerating all of them (ranks blocked on a dead
    /// peer are released by the deadlock trap and reported too).
    ///
    /// Type parameters: `T` — message element type; `R` — per-rank
    /// result.
    pub fn try_run<T, R, F>(p: usize, cfg: MachineConfig, body: F) -> Result<RunReport<R>, RunError>
    where
        T: Msg,
        R: Send,
        F: Fn(&Rank<T>) -> R + Send + Sync,
    {
        assert!(p > 0, "machine needs at least one rank");
        // A malformed plan (NaN skew, probability outside [0, 1]) is a
        // programming error that would otherwise silently bias every
        // fault decision; fail loudly before spawning anything.
        if let Err(e) = cfg.faults.validate() {
            panic!("invalid FaultPlan: {e}");
        }
        // Register the rank threads with the shared thread budget so
        // per-rank kernel pools size themselves to cores/P instead of
        // oversubscribing (released when the run finishes). The event
        // backend runs one rank at a time, so it registers a single
        // rank and each body's kernels keep the full core budget.
        let event = cfg.backend == Backend::Event;
        let _budget = distconv_par::budget::enter_ranks(if event { 1 } else { p });
        let sched = event.then(|| Arc::new(EventScheduler::new(p)));
        let stats = Arc::new(Stats::new(p));
        let tracer: Option<Arc<Tracer>> = cfg
            .trace
            .enabled
            .then(|| Arc::new(Tracer::new(p, cfg.trace.capacity)));
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| unbounded::<Packet<T>>()).unzip();
        let senders = Arc::new(senders);
        let trackers: Vec<MemoryTracker> = (0..p)
            .map(|id| MemoryTracker::new(id, cfg.mem_capacity))
            .collect();

        let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
        let clocks: Vec<std::sync::atomic::AtomicU64> = (0..p)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        let panics: std::sync::Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> =
            std::sync::Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (id, (rx, slot)) in receivers.into_iter().zip(results.iter_mut()).enumerate() {
                let rank = Rank::new(
                    id,
                    p,
                    Arc::clone(&senders),
                    rx,
                    Arc::clone(&stats),
                    trackers[id].clone(),
                    &cfg,
                    tracer.clone(),
                    sched.clone(),
                );
                let body = &body;
                let panics = &panics;
                let clock_slot = &clocks[id];
                let sched = sched.clone();
                handles.push(scope.spawn(move || {
                    // Event backend: wait for the scheduler's first
                    // dispatch before the body runs.
                    if let Some(s) = &sched {
                        s.start(id);
                    }
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&rank))) {
                        Ok(r) => {
                            // Release any reorder-held packets before the
                            // rank retires (a crashed rank's are lost).
                            rank.flush_holdbacks();
                            *slot = Some(r);
                        }
                        Err(e) => panics.lock().unwrap().push((id, e)),
                    }
                    // Store the final clock on the panic path too: a
                    // victim's clock-at-death is what the failure
                    // detector timestamps its detection from.
                    clock_slot.store(rank.clock().to_bits(), std::sync::atomic::Ordering::Relaxed);
                    // Hand the floor off even when the body panicked —
                    // otherwise one crashed rank would wedge the run.
                    if let Some(s) = &sched {
                        s.retire(id);
                    }
                }));
            }
            for h in handles {
                // Threads never panic (they catch), so join always succeeds.
                h.join().expect("rank thread poisoned");
            }
        });

        let final_clocks: Vec<f64> = clocks
            .iter()
            .map(|c| f64::from_bits(c.load(std::sync::atomic::Ordering::Relaxed)))
            .collect();
        let panics = panics.into_inner().unwrap();
        if !panics.is_empty() {
            let mut failures: Vec<RankFailure> = panics
                .iter()
                .map(|(id, payload)| {
                    let message = payload_text(payload.as_ref());
                    RankFailure {
                        rank: *id,
                        kind: classify(&message),
                        message,
                    }
                })
                .collect();
            failures.sort_by_key(|f| f.rank);
            let detections = if cfg.detector.enabled {
                let crashed: Vec<RankId> = failures
                    .iter()
                    .filter(|f| f.kind == FailureKind::Crash)
                    .map(|f| f.rank)
                    .collect();
                let starved: Vec<RankId> = failures
                    .iter()
                    .filter(|f| f.kind == FailureKind::Deadlock)
                    .map(|f| f.rank)
                    .collect();
                if !crashed.is_empty() {
                    // A crash explains the silence: deadlock-trapped
                    // survivors starved on a corpse, they did not
                    // deadlock among themselves.
                    for f in &mut failures {
                        if f.kind == FailureKind::Deadlock {
                            f.kind = FailureKind::Starved;
                        }
                    }
                }
                classify_failed_run(&cfg.detector, &crashed, &starved, &final_clocks)
            } else {
                Vec::new()
            };
            let partial = stats.snapshot();
            return Err(RunError {
                failures,
                fault_seed: cfg.faults.seed,
                wasted_msgs: partial.total_msgs(),
                wasted_elems: partial.total_elems(),
                detections,
            });
        }

        let snapshot = stats.snapshot();
        let sim_time = snapshot.simulated_time(&cfg.cost);
        let makespan = final_clocks.iter().copied().fold(0.0, f64::max);
        // All rank threads have joined, so the Arc is unique again; a
        // disabled tracer yields an empty (but correctly-shaped) trace.
        let mut trace = tracer
            .map(|t| {
                Arc::try_unwrap(t)
                    .map(Tracer::into_run_trace)
                    .unwrap_or_else(|_| RunTrace::empty(p))
            })
            .unwrap_or_else(|| RunTrace::empty(p));
        let detections = if cfg.detector.enabled {
            detect_stragglers(&cfg.detector, &final_clocks)
        } else {
            Vec::new()
        };
        if cfg.trace.enabled {
            // Detections become spans on rank 0 (the detector is the
            // runtime's verdict, not any one rank's work) — same
            // convention as the recovery markers in `distconv-core`.
            for d in &detections {
                trace.push(
                    0,
                    SpanEvent {
                        kind: SpanKind::FailureDetect,
                        step: 0,
                        peer: Some(d.rank),
                        tag: 0,
                        elems: 0,
                        start_ns: 0,
                        dur_ns: 0,
                    },
                );
            }
        }
        Ok(RunReport {
            results: results
                .into_iter()
                .map(|r| r.expect("rank completed"))
                .collect(),
            peak_mem: trackers.iter().map(|t| t.peak()).collect(),
            stats: snapshot,
            sim_time,
            makespan,
            timing: stats.timing(),
            trace,
            detections,
        })
    }

    /// Panicking convenience wrapper over [`Machine::try_run`]: on
    /// failure, panics with a message enumerating *every* failed rank
    /// (id, classification, original panic text).
    pub fn run<T, R, F>(p: usize, cfg: MachineConfig, body: F) -> RunReport<R>
    where
        T: Msg,
        R: Send,
        F: Fn(&Rank<T>) -> R + Send + Sync,
    {
        match Self::try_run(p, cfg, body) {
            Ok(report) => report,
            Err(err) => panic!("{err}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let r = Machine::run::<f32, _, _>(1, MachineConfig::default(), |rank| rank.id() * 10);
        assert_eq!(r.results, vec![0]);
        assert_eq!(r.stats.total_msgs(), 0);
    }

    #[test]
    fn results_indexed_by_rank() {
        let r = Machine::run::<f32, _, _>(8, MachineConfig::default(), |rank| rank.id());
        assert_eq!(r.results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn memory_capacity_enforced() {
        let cfg = MachineConfig {
            mem_capacity: Some(100),
            ..MachineConfig::default()
        };
        let r = Machine::run::<f32, _, _>(2, cfg, |rank| {
            let lease = rank.mem().lease(60).unwrap();
            let second = rank.mem().lease(60); // would exceed 100
            drop(lease);
            second.is_err()
        });
        assert_eq!(r.results, vec![true, true]);
        assert_eq!(r.peak_mem, vec![60, 60]);
    }

    #[test]
    fn peak_memory_reported() {
        let r = Machine::run::<f32, _, _>(3, MachineConfig::default(), |rank| {
            let _a = rank.mem().lease((rank.id() as u64 + 1) * 10).unwrap();
        });
        assert_eq!(r.peak_mem, vec![10, 20, 30]);
        assert_eq!(r.max_peak_mem(), 30);
    }

    #[test]
    #[should_panic(expected = "boom from rank 2")]
    fn rank_panic_propagates() {
        Machine::run::<f32, _, _>(4, MachineConfig::default(), |rank| {
            if rank.id() == 2 {
                panic!("boom from rank {}", rank.id());
            }
        });
    }

    #[test]
    fn run_panic_enumerates_every_failed_rank() {
        let result = std::panic::catch_unwind(|| {
            Machine::run::<f32, _, _>(4, MachineConfig::default(), |rank| {
                if rank.id() % 2 == 1 {
                    panic!("boom from rank {}", rank.id());
                }
            })
        });
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("2 rank(s) failed"), "got: {msg}");
        assert!(msg.contains("boom from rank 1"), "got: {msg}");
        assert!(msg.contains("boom from rank 3"), "got: {msg}");
    }

    #[test]
    fn try_run_aggregates_and_classifies() {
        let cfg = MachineConfig {
            recv_timeout: Duration::from_millis(100),
            faults: FaultPlan::default().with_crash(1, 1),
            ..MachineConfig::default()
        };
        let err = Machine::try_run::<u64, _, _>(3, cfg, |rank| {
            if rank.id() == 1 {
                rank.send(2, 5, &[1]);
            }
            if rank.id() == 2 {
                let _ = rank.recv(1, 5); // starves: rank 1 died first
            }
        })
        .expect_err("crash must fail the run");
        assert_eq!(err.fault_seed, 0);
        assert!(err.has_injected_crash());
        assert_eq!(err.failed_ranks(), vec![1, 2]);
        assert_eq!(err.failures[0].kind, FailureKind::Crash);
        assert_eq!(err.failures[1].kind, FailureKind::Deadlock);
        // Display carries every original message.
        let text = err.to_string();
        assert!(text.contains("fault-injected crash"), "got: {text}");
        assert!(text.contains("deadlock trap"), "got: {text}");
    }

    #[test]
    fn try_run_ok_on_clean_run() {
        let r = Machine::try_run::<f32, _, _>(2, MachineConfig::default(), |rank| rank.id())
            .expect("clean run");
        assert_eq!(r.results, vec![0, 1]);
    }

    #[test]
    fn makespan_single_hop() {
        // One message: makespan = α + β·n exactly.
        let cfg = MachineConfig::default();
        let n = 1000usize;
        let r = Machine::run::<f32, _, _>(2, cfg, move |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &vec![0.0; n]);
            } else {
                let _ = rank.recv(0, 1);
            }
        });
        let expect = cfg.cost.alpha + cfg.cost.beta * n as f64;
        assert!(
            (r.makespan - expect).abs() < 1e-15,
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn makespan_respects_dependency_chains() {
        // A 4-hop relay has makespan 4·(α+β) even though each rank only
        // sends once (per-rank sim_time would be 1 hop).
        let cfg = MachineConfig::default();
        let r = Machine::run::<f32, _, _>(5, cfg, move |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[1.0]);
            } else {
                let v = rank.recv(rank.id() - 1, 1);
                if rank.id() < 4 {
                    rank.send(rank.id() + 1, 1, &v);
                }
            }
        });
        let hop = cfg.cost.alpha + cfg.cost.beta;
        assert!(
            (r.makespan - 4.0 * hop).abs() < 1e-15,
            "relay makespan {} vs {}",
            r.makespan,
            4.0 * hop
        );
        // The volume-based estimate cannot see the chain.
        assert!(r.sim_time < r.makespan);
    }

    #[test]
    fn makespan_tree_depth_not_volume() {
        // Binomial bcast among 8: makespan grows with depth (3 levels),
        // not with total volume (7 messages).
        use crate::comm::Communicator;
        let cfg = MachineConfig::default();
        let n = 1usize << 14;
        let r = Machine::run::<f32, _, _>(8, cfg, move |rank| {
            let comm = Communicator::world(rank);
            let mut buf = vec![0.0f32; n];
            comm.bcast(0, &mut buf);
        });
        let hop = cfg.cost.alpha + cfg.cost.beta * n as f64;
        // Root sends its 3 children serially; the last child's subtree
        // is shallow — classic binomial: makespan = 3 hops (depth) and
        // at most ~(log2 P + small) hops, never the 7 hops of volume.
        assert!(
            r.makespan >= 3.0 * hop * 0.99,
            "{} vs {}",
            r.makespan,
            3.0 * hop
        );
        assert!(r.makespan <= 4.0 * hop, "{} vs {}", r.makespan, 4.0 * hop);
    }

    #[test]
    fn rank_threads_share_the_kernel_thread_budget() {
        // An explicit DISTCONV_THREADS pin bypasses the arbiter, so the
        // assertion only holds when the budget is in charge. The skip
        // is loud (CI's unpinned leg greps for the marker's absence to
        // prove the assertion actually ran — see ci.yml).
        if std::env::var("DISTCONV_THREADS").is_ok() {
            eprintln!(
                "SKIPPED rank_threads_share_the_kernel_thread_budget: \
                 DISTCONV_THREADS is pinned, budget arbiter bypassed"
            );
            return;
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let p = cores * 2; // deliberately oversubscribed
                           // Pinned to the thread backend: the event backend intentionally
                           // registers a single rank (one body runs at a time), so its
                           // pools keep the full budget and this assertion doesn't apply.
        let cfg = MachineConfig {
            backend: Backend::Thread,
            ..MachineConfig::default()
        };
        let r = Machine::run::<f32, _, _>(p, cfg, |_| distconv_par::num_threads());
        // cores / (2·cores) rounds to 0 → clamped to 1 worker per rank.
        // Concurrent tests holding budget guards only shrink it further.
        assert!(
            r.results.iter().all(|&t| t == 1),
            "oversubscribed machine must budget pools down to 1 worker, got {:?}",
            r.results
        );
    }

    #[test]
    fn event_backend_matches_thread_backend_bitwise() {
        // Same relay on both backends: results, counters, clocks.
        let body = |rank: &crate::Rank<f64>| {
            if rank.id() == 0 {
                rank.send(1, 1, &[0.25; 100]);
                Vec::new()
            } else {
                let v = rank.recv(rank.id() - 1, 1);
                if rank.id() + 1 < rank.size() {
                    rank.send(rank.id() + 1, 1, &v);
                }
                v
            }
        };
        let thread_cfg = MachineConfig {
            backend: Backend::Thread,
            ..MachineConfig::default()
        };
        let event_cfg = MachineConfig {
            backend: Backend::Event,
            ..MachineConfig::default()
        };
        let a = Machine::run::<f64, _, _>(5, thread_cfg, body);
        let b = Machine::run::<f64, _, _>(5, event_cfg, body);
        assert_eq!(a.results, b.results);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.peak_mem, b.peak_mem);
        assert_eq!(a.trace.canonical(), b.trace.canonical());
    }

    #[test]
    fn event_backend_detects_deadlock_without_waiting_for_the_timeout() {
        // The scheduler proves the deadlock; the 1-hour timeout is
        // never consulted. (The thread backend would block here.)
        let cfg = MachineConfig {
            backend: Backend::Event,
            recv_timeout: Duration::from_secs(3600),
            ..MachineConfig::default()
        };
        let t0 = std::time::Instant::now();
        let err = Machine::try_run::<f32, _, _>(3, cfg, |rank| {
            if rank.id() == 0 {
                let _ = rank.recv(1, 42); // nobody sends this
            }
        })
        .expect_err("starved receive must fail the run");
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "trap must be immediate"
        );
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].rank, 0);
        assert_eq!(err.failures[0].kind, FailureKind::Deadlock);
    }

    #[test]
    fn event_backend_survives_a_crashing_rank() {
        // The crashed rank must hand the floor off so the survivor can
        // reach its own (detected) starvation instead of wedging.
        let cfg = MachineConfig {
            backend: Backend::Event,
            faults: FaultPlan::default().with_crash(1, 1),
            ..MachineConfig::default()
        };
        let err = Machine::try_run::<u64, _, _>(3, cfg, |rank| {
            if rank.id() == 1 {
                rank.send(2, 5, &[1]);
            }
            if rank.id() == 2 {
                let _ = rank.recv(1, 5);
            }
        })
        .expect_err("crash must fail the run");
        assert_eq!(err.failed_ranks(), vec![1, 2]);
        assert_eq!(err.failures[0].kind, FailureKind::Crash);
        assert_eq!(err.failures[1].kind, FailureKind::Deadlock);
    }

    #[test]
    fn event_backend_runs_hundreds_of_ranks() {
        // Far past the host's core count: a binomial bcast over 512
        // ranks, with the analytic makespan check of the small cases.
        use crate::comm::Communicator;
        let cfg = MachineConfig {
            backend: Backend::Event,
            trace: TraceConfig::off(),
            ..MachineConfig::default()
        };
        let p = 512usize;
        let r = Machine::run::<f32, _, _>(p, cfg, move |rank| {
            let comm = Communicator::world(rank);
            let mut buf = vec![rank.id() as f32; 16];
            if comm.me() != 3 {
                buf = vec![0.0; 16];
            }
            comm.bcast(3, &mut buf);
            buf[0]
        });
        assert!(r.results.iter().all(|&v| v == 3.0));
        assert_eq!(r.stats.total_elems(), 16 * (p as u64 - 1));
        let hop = cfg.cost.alpha + cfg.cost.beta * 16.0;
        // Depth of the 512-member binomial tree is 9; the root's
        // serialized child sends add at most one more hop.
        assert!(r.makespan >= 9.0 * hop * 0.99 && r.makespan <= 10.0 * hop);
    }

    #[test]
    fn fixed_compute_model_charges_the_virtual_clock() {
        use crate::event::ComputeModel;
        let cfg = MachineConfig {
            compute: ComputeModel::Fixed { seconds: 0.5 },
            ..MachineConfig::default()
        };
        let r = Machine::run::<f32, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                rank.time_compute(|| ());
                rank.send(1, 1, &[1.0]);
            } else {
                let _ = rank.recv(0, 1);
            }
        });
        let expect = 0.5 + cfg.cost.alpha + cfg.cost.beta;
        assert!(
            (r.makespan - expect).abs() < 1e-12,
            "{} vs {expect}",
            r.makespan
        );
    }

    #[test]
    fn trace_records_sends_recvs_and_compute() {
        use distconv_trace::SpanKind;
        let r = Machine::run::<f32, _, _>(2, MachineConfig::default(), |rank| {
            rank.set_step(3);
            if rank.id() == 0 {
                rank.time_compute(|| ());
                rank.send(1, 7, &[1.0, 2.0]);
            } else {
                let _ = rank.recv(0, 7);
            }
        });
        let canon = r.trace.canonical();
        let sends: Vec<_> = canon.iter().filter(|s| s.kind == SpanKind::Send).collect();
        assert_eq!(sends.len(), 1);
        assert_eq!(
            (
                sends[0].rank,
                sends[0].step,
                sends[0].peer,
                sends[0].tag,
                sends[0].elems
            ),
            (0, 3, Some(1), 7, 2)
        );
        let recvs: Vec<_> = canon.iter().filter(|s| s.kind == SpanKind::Recv).collect();
        assert_eq!(recvs.len(), 1);
        assert_eq!(
            (recvs[0].rank, recvs[0].peer, recvs[0].elems),
            (1, Some(0), 2)
        );
        assert_eq!(
            canon
                .iter()
                .filter(|s| s.kind == SpanKind::CommWait)
                .count(),
            1
        );
        assert_eq!(
            canon.iter().filter(|s| s.kind == SpanKind::Compute).count(),
            1
        );
        // Trace-vs-stats cross-check: per-rank sent elements agree.
        for rank in 0..2 {
            assert_eq!(r.trace.sent_elems(rank), r.stats.per_rank_elems[rank]);
        }
    }

    #[test]
    fn trace_disabled_yields_empty_trace() {
        use distconv_trace::TraceConfig;
        let cfg = MachineConfig {
            trace: TraceConfig::off(),
            ..MachineConfig::default()
        };
        let r = Machine::run::<f32, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[1.0]);
            } else {
                let _ = rank.recv(0, 1);
            }
        });
        assert!(r.trace.is_empty());
        assert_eq!(r.trace.per_rank.len(), 2);
        // Counters are unaffected by the tracing switch.
        assert_eq!(r.stats.total_elems(), 1);
    }

    #[test]
    fn trace_retransmits_under_faults_stay_out_of_send_spans() {
        use distconv_trace::SpanKind;
        let cfg = MachineConfig {
            faults: FaultPlan::reliable(0xC0FFEE).with_drops(0.5),
            ..MachineConfig::default()
        };
        let r = Machine::run::<u64, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                for i in 0..10u64 {
                    rank.send(1, 5, &[i]);
                }
            } else {
                for _ in 0..10 {
                    let _ = rank.recv(0, 5);
                }
            }
        });
        let canon = r.trace.canonical();
        let sends = canon.iter().filter(|s| s.kind == SpanKind::Send).count();
        let retrans = canon
            .iter()
            .filter(|s| s.kind == SpanKind::Retransmit)
            .count();
        assert_eq!(sends, 10, "logical sends only");
        assert_eq!(retrans as u64, r.stats.fault.retrans_msgs);
        assert!(retrans > 0, "p=0.5 over 10 messages certainly dropped");
    }

    #[test]
    #[should_panic(expected = "invalid FaultPlan")]
    fn malformed_fault_plan_fails_before_spawning() {
        let mut faults = FaultPlan::reliable(1);
        faults.drop_prob = f64::NAN; // bypasses the checked builders
        let cfg = MachineConfig {
            faults,
            ..MachineConfig::default()
        };
        let _ = Machine::run::<f32, _, _>(2, cfg, |_| ());
    }

    #[test]
    fn detector_classifies_crash_and_reclassifies_starvation() {
        use crate::detect::{DetectionKind, DetectorConfig};
        let cfg = MachineConfig {
            recv_timeout: Duration::from_millis(100),
            faults: FaultPlan::default().with_crash(1, 1),
            detector: DetectorConfig::with_timeout(0.25),
            ..MachineConfig::default()
        };
        let err = Machine::try_run::<u64, _, _>(3, cfg, |rank| {
            if rank.id() == 1 {
                rank.send(2, 5, &[1]);
            }
            if rank.id() == 2 {
                let _ = rank.recv(1, 5); // starves: rank 1 died first
            }
        })
        .expect_err("crash must fail the run");
        // The crash explains rank 2's silence: starved, not deadlocked.
        assert_eq!(err.failures[0].kind, FailureKind::Crash);
        assert_eq!(err.failures[1].kind, FailureKind::Starved);
        assert_eq!(err.dead_ranks(), vec![1]);
        assert_eq!(err.failed_ranks(), vec![1, 2]);
        // One detection: the crash, a heartbeat after the victim's
        // clock stopped (it died *before* its first send completed, so
        // its clock at death is 0).
        assert_eq!(err.detections.len(), 1);
        assert_eq!(err.detections[0].rank, 1);
        assert_eq!(err.detections[0].kind, DetectionKind::Crash);
        assert!((err.detections[0].at - 0.25).abs() < 1e-12);
    }

    #[test]
    fn detector_classifies_pure_starvation_as_deadlock() {
        use crate::detect::{DetectionKind, DetectorConfig};
        let cfg = MachineConfig {
            backend: Backend::Event,
            detector: DetectorConfig::with_timeout(1.0),
            ..MachineConfig::default()
        };
        let err = Machine::try_run::<f32, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                let _ = rank.recv(1, 42); // nobody sends this
            }
        })
        .expect_err("starved receive must fail the run");
        assert_eq!(err.failures[0].kind, FailureKind::Deadlock);
        assert!(err.dead_ranks().is_empty());
        assert_eq!(err.detections.len(), 1);
        assert_eq!(err.detections[0].kind, DetectionKind::Deadlock);
    }

    #[test]
    fn detector_flags_stragglers_on_success() {
        use crate::detect::{DetectionKind, DetectorConfig};
        use distconv_trace::SpanKind;
        let cfg = MachineConfig {
            faults: FaultPlan {
                seed: 0,
                straggler: Some(crate::fault::Straggler {
                    rank: 1,
                    factor: 10.0,
                }),
                ..FaultPlan::default()
            },
            detector: DetectorConfig::with_timeout(1.0), // threshold 4.0
            ..MachineConfig::default()
        };
        let r = Machine::run::<f32, _, _>(3, cfg, |rank| {
            // Every rank issues the same fire-and-forget send (never
            // received, so the straggler's skewed clock cannot
            // propagate via Lamport max); rank 1's clock runs 10× —
            // an outlier the detector must flag.
            rank.send((rank.id() + 1) % rank.size(), 1, &[0.0f32; 64]);
        });
        assert_eq!(r.detections.len(), 1);
        assert_eq!(r.detections[0].rank, 1);
        assert_eq!(r.detections[0].kind, DetectionKind::Straggler);
        // The verdict is also visible in the trace.
        let detects: Vec<_> = r
            .trace
            .canonical()
            .into_iter()
            .filter(|s| s.kind == SpanKind::FailureDetect)
            .collect();
        assert_eq!(detects.len(), 1);
        assert_eq!(detects[0].peer, Some(1));
    }

    #[test]
    fn detector_disabled_reports_nothing() {
        let cfg = MachineConfig {
            faults: FaultPlan {
                seed: 0,
                straggler: Some(crate::fault::Straggler {
                    rank: 0,
                    factor: 100.0,
                }),
                ..FaultPlan::default()
            },
            ..MachineConfig::default()
        };
        let r = Machine::run::<f32, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[1.0]);
            } else {
                let _ = rank.recv(0, 1);
            }
        });
        assert!(r.detections.is_empty());
    }

    #[test]
    fn sim_time_positive_when_traffic() {
        let r = Machine::run::<f32, _, _>(2, MachineConfig::default(), |rank| {
            if rank.id() == 0 {
                rank.send(1, 1, &[0.0; 1000]);
            } else {
                let _ = rank.recv(0, 1);
            }
        });
        assert!(r.sim_time > 0.0);
    }
}

//! Deterministic fault injection for the simulated machine.
//!
//! The paper's cost model (Eqs. 1–11) assumes a fault-free, uniform
//! machine. A [`FaultPlan`] lets the simulator *violate* that assumption
//! on purpose — and reproducibly: every fault decision is a pure
//! function of `(plan.seed, src, dst, wire-sequence, attempt)` through
//! the workspace's SplitMix64 hash, so a run with a given plan behaves
//! identically regardless of thread scheduling, and any chaos-test
//! failure replays from one `u64` seed.
//!
//! ## Fault classes
//!
//! *Link faults* (per message, decided at the sender, probabilistic):
//!
//! * **drop** — the packet never reaches the destination mailbox;
//! * **duplicate** — a second physical copy is enqueued;
//! * **delay** — the packet's Lamport timestamp is skewed forward by
//!   [`FaultPlan::delay_skew`] simulated seconds (clock skew: affects the
//!   makespan, never the payload);
//! * **reorder** — the packet is held back and enqueued *after* the
//!   sender's next message to the same destination (flushed before the
//!   sender's next blocking receive, and at the end of its rank body, so
//!   a held message can never be lost by a well-terminating rank).
//!
//! *Rank faults* (deterministic, not probabilistic):
//!
//! * **crash** — the chosen rank panics at its `at_send`-th send
//!   (1-based), exactly like a process dying mid-collective;
//! * **straggler** — the chosen rank's per-send logical-clock advance is
//!   multiplied by `factor`, modelling a slow NIC/node. Affects the
//!   makespan only.
//!
//! ## Reliable delivery
//!
//! With [`FaultPlan::reliable`] set, the transport in [`crate::Rank`]
//! runs a per-`(pair, tag)` sequence-numbered ARQ: every data packet is
//! acknowledged, unacknowledged packets are retransmitted up to
//! [`MAX_SEND_ATTEMPTS`] times with exponential backoff *in simulated
//! time*, and the receiver suppresses duplicates and re-assembles
//! per-`(src, tag)` FIFO order from sequence numbers. Collectives built
//! on the point-to-point layer then survive any link-fault plan
//! bit-identically. Retransmit, duplicate and ack traffic is accounted
//! in [`crate::stats::FaultTraffic`] — *separately* from the algorithmic
//! counters, so the paper's volume tables are unaffected even under
//! faults. Without `reliable`, link faults hit the raw transport and a
//! dropped message surfaces as a deadlock-trap panic downstream — useful
//! for demonstrating which schedules fail loudly vs. corrupt silently.

use distconv_par::rng::splitmix64;

/// Upper bound on ARQ transmissions per logical message (first try +
/// retransmits). With drop probability `p` applied independently to the
/// data packet and its ack, the chance of exhausting the budget is
/// `(1 − (1−p)²)^MAX` — below 1e-11 even at `p = 0.3`.
pub const MAX_SEND_ATTEMPTS: u32 = 40;

/// Marker embedded in injected-crash panic messages; [`crate::machine`]
/// uses it to classify the failure. Kept stable for log grepping.
pub const CRASH_MARKER: &str = "fault-injected crash";

/// Crash a rank at its `at_send`-th send (1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashAt {
    /// The rank that dies.
    pub rank: usize,
    /// Which of its sends kills it (1 = the very first).
    pub at_send: u64,
    /// A *persistent* crash survives [`FaultPlan::without_rank_faults`]:
    /// it models a dead node that keeps killing its replacement process,
    /// not a one-shot process death. Checkpoint/restart retries against
    /// a persistent crash fail identically every time, which is what
    /// drives the degraded-grid recovery path in `distconv-core`.
    pub persistent: bool,
}

/// Slow one rank down by a multiplicative factor on its logical clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    /// The slow rank.
    pub rank: usize,
    /// Clock multiplier (`> 1` = slower).
    pub factor: f64,
}

/// A complete, seeded description of the faults to inject into one run.
///
/// The default plan is all-zero: **no fault machinery runs at all** —
/// the transport takes the exact pre-fault code path, so counters,
/// goldens and collective volumes are byte-identical to a build without
/// this module.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every probabilistic decision hashes it.
    pub seed: u64,
    /// Run the ARQ reliable-delivery transport (see module docs).
    pub reliable: bool,
    /// Per-message drop probability (data packets and acks alike).
    pub drop_prob: f64,
    /// Per-message duplicate probability.
    pub dup_prob: f64,
    /// Per-message Lamport-delay probability.
    pub delay_prob: f64,
    /// Simulated seconds of clock skew added to a delayed packet.
    pub delay_skew: f64,
    /// Per-message reorder (hold-back) probability.
    pub reorder_prob: f64,
    /// Deterministic rank crash, if any.
    pub crash: Option<CrashAt>,
    /// Deterministic straggler rank, if any.
    pub straggler: Option<Straggler>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            reliable: false,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            delay_skew: 0.0,
            reorder_prob: 0.0,
            crash: None,
            straggler: None,
        }
    }
}

/// Why a [`FaultPlan`] field was rejected. Every probability must lie in
/// `[0, 1]`, the delay skew must be finite and non-negative, and a
/// straggler factor must be finite and positive — a NaN or out-of-range
/// value would silently bias every downstream hash comparison (NaN
/// compares false against everything, so `NaN < p` never drops and
/// `factor = NaN` poisons every clock), which is exactly the silent
/// misbehavior this typed error exists to prevent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultPlanError {
    /// A probability field was outside `[0, 1]` (or NaN).
    InvalidProbability {
        /// Which field (`"drop_prob"`, `"dup_prob"`, …).
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The delay skew was NaN, infinite, or negative.
    InvalidDelaySkew {
        /// The rejected value.
        value: f64,
    },
    /// The straggler factor was NaN, infinite, zero, or negative.
    InvalidStragglerFactor {
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::InvalidProbability { field, value } => {
                write!(
                    f,
                    "FaultPlan.{field} = {value} is not a probability in [0, 1]"
                )
            }
            FaultPlanError::InvalidDelaySkew { value } => {
                write!(f, "FaultPlan.delay_skew = {value} must be finite and >= 0")
            }
            FaultPlanError::InvalidStragglerFactor { value } => {
                write!(
                    f,
                    "FaultPlan straggler factor = {value} must be finite and > 0"
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn check_prob(field: &'static str, value: f64) -> Result<(), FaultPlanError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(FaultPlanError::InvalidProbability { field, value })
    }
}

/// Decision salts: distinct per fault class so the per-class streams are
/// independent functions of the same `(seed, src, dst, wire)` key.
const SALT_DROP_DATA: u64 = 0xD80D;
const SALT_DROP_ACK: u64 = 0xD8AC;
const SALT_DUP: u64 = 0xD0B1;
const SALT_DELAY: u64 = 0xDE1A;
const SALT_REORDER: u64 = 0x2E02;

impl FaultPlan {
    /// A reliable-delivery plan with the given seed and no faults yet;
    /// chain the `with_*` builders to add them.
    pub fn reliable(seed: u64) -> Self {
        FaultPlan {
            seed,
            reliable: true,
            ..FaultPlan::default()
        }
    }

    /// Validate every field; the checked `try_with_*` builders call this
    /// incrementally, [`crate::Machine`] calls it once per run so a plan
    /// assembled by hand cannot slip NaNs past the builders.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        check_prob("drop_prob", self.drop_prob)?;
        check_prob("dup_prob", self.dup_prob)?;
        check_prob("delay_prob", self.delay_prob)?;
        check_prob("reorder_prob", self.reorder_prob)?;
        if !self.delay_skew.is_finite() || self.delay_skew < 0.0 {
            return Err(FaultPlanError::InvalidDelaySkew {
                value: self.delay_skew,
            });
        }
        if let Some(s) = self.straggler {
            if !s.factor.is_finite() || s.factor <= 0.0 {
                return Err(FaultPlanError::InvalidStragglerFactor { value: s.factor });
            }
        }
        Ok(())
    }

    /// Set the drop probability, rejecting values outside `[0, 1]`.
    pub fn try_with_drops(mut self, p: f64) -> Result<Self, FaultPlanError> {
        check_prob("drop_prob", p)?;
        self.drop_prob = p;
        Ok(self)
    }

    /// Set the duplicate probability, rejecting values outside `[0, 1]`.
    pub fn try_with_dups(mut self, p: f64) -> Result<Self, FaultPlanError> {
        check_prob("dup_prob", p)?;
        self.dup_prob = p;
        Ok(self)
    }

    /// Set the delay probability and skew, rejecting probabilities
    /// outside `[0, 1]` and non-finite or negative skews.
    pub fn try_with_delays(mut self, p: f64, skew: f64) -> Result<Self, FaultPlanError> {
        check_prob("delay_prob", p)?;
        if !skew.is_finite() || skew < 0.0 {
            return Err(FaultPlanError::InvalidDelaySkew { value: skew });
        }
        self.delay_prob = p;
        self.delay_skew = skew;
        Ok(self)
    }

    /// Set the reorder probability, rejecting values outside `[0, 1]`.
    pub fn try_with_reorders(mut self, p: f64) -> Result<Self, FaultPlanError> {
        check_prob("reorder_prob", p)?;
        self.reorder_prob = p;
        Ok(self)
    }

    /// Slow `rank` by `factor`, rejecting non-finite or non-positive
    /// factors.
    pub fn try_with_straggler(mut self, rank: usize, factor: f64) -> Result<Self, FaultPlanError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(FaultPlanError::InvalidStragglerFactor { value: factor });
        }
        self.straggler = Some(Straggler { rank, factor });
        Ok(self)
    }

    /// Set the drop probability (panics on invalid values — use
    /// [`FaultPlan::try_with_drops`] to handle them).
    pub fn with_drops(self, p: f64) -> Self {
        self.try_with_drops(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Set the duplicate probability (panicking variant of
    /// [`FaultPlan::try_with_dups`]).
    pub fn with_dups(self, p: f64) -> Self {
        self.try_with_dups(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Set the delay probability and skew (panicking variant of
    /// [`FaultPlan::try_with_delays`]).
    pub fn with_delays(self, p: f64, skew: f64) -> Self {
        self.try_with_delays(p, skew)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Set the reorder probability (panicking variant of
    /// [`FaultPlan::try_with_reorders`]).
    pub fn with_reorders(self, p: f64) -> Self {
        self.try_with_reorders(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Crash `rank` at its `at_send`-th send (a *transient* crash: a
    /// checkpoint/restart retry clears it via
    /// [`FaultPlan::without_rank_faults`]).
    pub fn with_crash(mut self, rank: usize, at_send: u64) -> Self {
        self.crash = Some(CrashAt {
            rank,
            at_send,
            persistent: false,
        });
        self
    }

    /// Crash `rank` at its `at_send`-th send *persistently*: the crash
    /// survives [`FaultPlan::without_rank_faults`], so every
    /// checkpoint/restart retry dies the same way — the scenario that
    /// forces `distconv-core` to shrink the grid and run degraded.
    pub fn with_persistent_crash(mut self, rank: usize, at_send: u64) -> Self {
        self.crash = Some(CrashAt {
            rank,
            at_send,
            persistent: true,
        });
        self
    }

    /// Slow `rank` by `factor` (panicking variant of
    /// [`FaultPlan::try_with_straggler`]).
    pub fn with_straggler(self, rank: usize, factor: f64) -> Self {
        self.try_with_straggler(rank, factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// True when the plan injects nothing and requests no reliable
    /// transport: the machine takes the fault-free fast path.
    pub fn is_noop(&self) -> bool {
        !self.reliable && !self.link_active() && self.crash.is_none() && self.straggler.is_none()
    }

    /// True when any probabilistic link fault can fire.
    pub fn link_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.delay_prob > 0.0
            || self.reorder_prob > 0.0
    }

    /// The same plan with transient rank faults cleared — what a
    /// checkpoint/restart re-runs with after replacing a crashed rank.
    /// Link faults and stragglers persist (they model the network and
    /// hardware, not a one-shot process death), and so does a
    /// *persistent* crash ([`FaultPlan::with_persistent_crash`]): a dead
    /// node kills its replacement too, which is what exhausts the retry
    /// budget and triggers degraded-grid recovery.
    pub fn without_rank_faults(mut self) -> Self {
        if self.crash.is_some_and(|c| !c.persistent) {
            self.crash = None;
        }
        self
    }

    /// Uniform `[0, 1)` decision variable for `(salt, src, dst, wire)`.
    fn uniform(&self, salt: u64, src: usize, dst: usize, wire: u64) -> f64 {
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt)
            .wrapping_add((src as u64) << 40)
            .wrapping_add((dst as u64) << 20)
            .wrapping_add(wire);
        (splitmix64(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does the data packet of `(src → dst, wire)` attempt `attempt` drop?
    pub(crate) fn drops_data(&self, src: usize, dst: usize, wire: u64, attempt: u32) -> bool {
        self.drop_prob > 0.0
            && self.uniform(
                SALT_DROP_DATA.wrapping_add((attempt as u64) << 48),
                src,
                dst,
                wire,
            ) < self.drop_prob
    }

    /// Does the ack of `(src → dst, wire)` attempt `attempt` drop?
    /// (Keyed by the *data* direction so sender and receiver agree.)
    pub(crate) fn drops_ack(&self, src: usize, dst: usize, wire: u64, attempt: u32) -> bool {
        self.drop_prob > 0.0
            && self.uniform(
                SALT_DROP_ACK.wrapping_add((attempt as u64) << 48),
                src,
                dst,
                wire,
            ) < self.drop_prob
    }

    /// Is `(src → dst, wire)` duplicated?
    pub(crate) fn duplicates(&self, src: usize, dst: usize, wire: u64) -> bool {
        self.dup_prob > 0.0 && self.uniform(SALT_DUP, src, dst, wire) < self.dup_prob
    }

    /// Is `(src → dst, wire)` delayed (Lamport clock skew)?
    pub(crate) fn delays(&self, src: usize, dst: usize, wire: u64) -> bool {
        self.delay_prob > 0.0 && self.uniform(SALT_DELAY, src, dst, wire) < self.delay_prob
    }

    /// Is `(src → dst, wire)` held back behind the next send to `dst`?
    pub(crate) fn reorders(&self, src: usize, dst: usize, wire: u64) -> bool {
        self.reorder_prob > 0.0 && self.uniform(SALT_REORDER, src, dst, wire) < self.reorder_prob
    }

    /// Clock multiplier for `rank` (1.0 unless it is the straggler).
    pub(crate) fn straggle_factor(&self, rank: usize) -> f64 {
        match self.straggler {
            Some(s) if s.rank == rank => s.factor,
            _ => 1.0,
        }
    }

    /// The send count at which `rank` crashes, if it is the victim.
    pub(crate) fn crashes_at(&self, rank: usize) -> Option<u64> {
        match self.crash {
            Some(c) if c.rank == rank => Some(c.at_send),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        let p = FaultPlan::default();
        assert!(p.is_noop());
        assert!(!p.link_active());
        assert_eq!(p.straggle_factor(3), 1.0);
        assert_eq!(p.crashes_at(0), None);
    }

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultPlan::reliable(42).with_drops(0.5).with_dups(0.5);
        for wire in 0..64u64 {
            assert_eq!(
                p.drops_data(1, 2, wire, 0),
                p.drops_data(1, 2, wire, 0),
                "same key must decide identically"
            );
        }
        // Distinct keys decide independently: over 256 draws at p=0.5
        // both outcomes must appear.
        let drops: Vec<bool> = (0..256).map(|w| p.drops_data(0, 1, w, 0)).collect();
        assert!(drops.iter().any(|&d| d) && drops.iter().any(|&d| !d));
    }

    #[test]
    fn classes_and_attempts_are_independent_streams() {
        let p = FaultPlan::reliable(7)
            .with_drops(0.5)
            .with_dups(0.5)
            .with_delays(0.5, 1.0)
            .with_reorders(0.5);
        let mut agree = 0;
        for w in 0..256u64 {
            if p.drops_data(0, 1, w, 0) == p.duplicates(0, 1, w) {
                agree += 1;
            }
        }
        // Perfect correlation would be 256 (or 0); independent streams
        // hover near 128.
        assert!((64..=192).contains(&agree), "agree={agree}");
        // Attempt index must change the drop decision stream.
        let a0: Vec<bool> = (0..64).map(|w| p.drops_data(0, 1, w, 0)).collect();
        let a1: Vec<bool> = (0..64).map(|w| p.drops_data(0, 1, w, 1)).collect();
        assert_ne!(a0, a1);
    }

    #[test]
    fn seed_changes_every_stream() {
        let a = FaultPlan::reliable(1).with_drops(0.5);
        let b = FaultPlan::reliable(2).with_drops(0.5);
        let da: Vec<bool> = (0..64).map(|w| a.drops_data(0, 1, w, 0)).collect();
        let db: Vec<bool> = (0..64).map(|w| b.drops_data(0, 1, w, 0)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn rank_fault_accessors() {
        let p = FaultPlan::default().with_crash(2, 5).with_straggler(1, 3.0);
        assert_eq!(p.crashes_at(2), Some(5));
        assert_eq!(p.crashes_at(1), None);
        assert_eq!(p.straggle_factor(1), 3.0);
        assert_eq!(p.straggle_factor(2), 1.0);
        assert!(!p.is_noop());
        let cleared = p.without_rank_faults();
        assert_eq!(cleared.crashes_at(2), None);
        assert_eq!(cleared.straggle_factor(1), 3.0, "straggler persists");
    }

    #[test]
    fn persistent_crash_survives_rank_fault_clearing() {
        let p = FaultPlan::default().with_persistent_crash(2, 5);
        assert_eq!(p.crashes_at(2), Some(5));
        let retried = p.without_rank_faults();
        assert_eq!(
            retried.crashes_at(2),
            Some(5),
            "a persistent crash must survive checkpoint/restart retries"
        );
    }

    #[test]
    fn builders_reject_invalid_fields() {
        let base = FaultPlan::reliable(1);
        assert_eq!(
            base.try_with_drops(1.5),
            Err(FaultPlanError::InvalidProbability {
                field: "drop_prob",
                value: 1.5
            })
        );
        assert!(matches!(
            base.try_with_dups(-0.1),
            Err(FaultPlanError::InvalidProbability {
                field: "dup_prob",
                ..
            })
        ));
        assert!(matches!(
            base.try_with_delays(f64::NAN, 1.0),
            Err(FaultPlanError::InvalidProbability {
                field: "delay_prob",
                ..
            })
        ));
        assert!(matches!(
            base.try_with_delays(0.1, f64::NAN),
            Err(FaultPlanError::InvalidDelaySkew { .. })
        ));
        assert!(matches!(
            base.try_with_delays(0.1, -1.0),
            Err(FaultPlanError::InvalidDelaySkew { .. })
        ));
        assert!(matches!(
            base.try_with_reorders(2.0),
            Err(FaultPlanError::InvalidProbability {
                field: "reorder_prob",
                ..
            })
        ));
        assert!(matches!(
            base.try_with_straggler(0, -3.0),
            Err(FaultPlanError::InvalidStragglerFactor { .. })
        ));
        assert!(matches!(
            base.try_with_straggler(0, f64::INFINITY),
            Err(FaultPlanError::InvalidStragglerFactor { .. })
        ));
        // Boundary values are valid probabilities.
        assert!(base.try_with_drops(0.0).is_ok());
        assert!(base.try_with_drops(1.0).is_ok());
        // The error message names the field and value.
        let msg = base.try_with_drops(1.5).unwrap_err().to_string();
        assert!(msg.contains("drop_prob") && msg.contains("1.5"), "{msg}");
    }

    #[test]
    fn validate_checks_hand_assembled_plans() {
        let mut p = FaultPlan::reliable(9).with_drops(0.2);
        assert_eq!(p.validate(), Ok(()));
        p.delay_skew = f64::NAN;
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::InvalidDelaySkew { .. })
        ));
        p.delay_skew = 0.0;
        p.straggler = Some(Straggler {
            rank: 1,
            factor: 0.0,
        });
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::InvalidStragglerFactor { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn panicking_builder_names_the_field() {
        let _ = FaultPlan::reliable(1).with_drops(7.0);
    }
}

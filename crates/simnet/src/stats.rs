//! Communication accounting: message and element counters, and the α–β
//! simulated-time model.
//!
//! Every point-to-point send in the machine increments these counters;
//! collectives are composed of point-to-point sends, so collective
//! volumes are accounted automatically along their actual algorithmic
//! paths (tree edges, ring hops). The paper's claims are stated in data
//! *volume* (elements moved), which [`StatsSnapshot::total_elems`]
//! reports exactly; the α–β model is a standard linear latency/bandwidth
//! estimate layered on top for who-wins time comparisons.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-machine communication counters. Cheap relaxed atomics: the
/// counters are monotone sums read only after the run completes (or for
/// progress display), so no ordering is required beyond atomicity.
#[derive(Debug)]
pub struct Stats {
    per_rank_msgs: Vec<AtomicU64>,
    per_rank_elems: Vec<AtomicU64>,
    /// Messages a rank sent to itself (tracked separately: local copies,
    /// not network traffic — excluded from totals).
    self_msgs: AtomicU64,
    self_elems: AtomicU64,
    /// Fault-machinery traffic (retransmits, duplicates, acks, drops).
    /// Separate from the algorithmic counters above so the paper's
    /// volume tables stay clean under fault injection.
    fault: FaultCounters,
    /// Inter-layer redistribution traffic (see
    /// [`crate::rank::TrafficClass`]). Separate from the algorithmic
    /// counters so per-layer volumes stay Eq-exact on multi-layer runs.
    redist: RedistCounters,
    /// Wall-clock nanoseconds ranks spent blocked in receives (summed
    /// over ranks). Kept out of [`StatsSnapshot`] — see
    /// [`TimingSnapshot`].
    comm_wait_ns: AtomicU64,
    /// Wall-clock nanoseconds ranks spent in timed compute sections.
    compute_ns: AtomicU64,
}

/// Atomic counters for inter-layer redistribution traffic.
#[derive(Debug, Default)]
struct RedistCounters {
    msgs: AtomicU64,
    elems: AtomicU64,
    self_msgs: AtomicU64,
    self_elems: AtomicU64,
}

/// Atomic counters for fault-injection and reliable-delivery overhead.
#[derive(Debug, Default)]
struct FaultCounters {
    retrans_msgs: AtomicU64,
    retrans_elems: AtomicU64,
    ack_msgs: AtomicU64,
    dropped_msgs: AtomicU64,
    dropped_elems: AtomicU64,
    dup_msgs: AtomicU64,
    dup_suppressed: AtomicU64,
    delayed_msgs: AtomicU64,
    reordered_msgs: AtomicU64,
}

impl Stats {
    /// Counters for `p` ranks, all zero.
    pub fn new(p: usize) -> Self {
        Stats {
            per_rank_msgs: (0..p).map(|_| AtomicU64::new(0)).collect(),
            per_rank_elems: (0..p).map(|_| AtomicU64::new(0)).collect(),
            self_msgs: AtomicU64::new(0),
            self_elems: AtomicU64::new(0),
            fault: FaultCounters::default(),
            redist: RedistCounters::default(),
            comm_wait_ns: AtomicU64::new(0),
            compute_ns: AtomicU64::new(0),
        }
    }

    /// Record `ns` wall-clock nanoseconds a rank spent blocked waiting
    /// for a message (comm-wait time; see [`TimingSnapshot`]).
    pub fn record_comm_wait_ns(&self, ns: u64) {
        self.comm_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record `ns` wall-clock nanoseconds a rank spent in a timed
    /// compute section (see `Rank::time_compute`).
    pub fn record_compute_ns(&self, ns: u64) {
        self.compute_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Snapshot the wall-clock timing breakdown. Deliberately separate
    /// from [`Stats::snapshot`]: timing is host-dependent and
    /// nondeterministic, while [`StatsSnapshot`] must stay `Eq`-exact
    /// for the determinism and fault-transparency suites.
    pub fn timing(&self) -> TimingSnapshot {
        TimingSnapshot {
            comm_wait_ns: self.comm_wait_ns.load(Ordering::Relaxed),
            compute_ns: self.compute_ns.load(Ordering::Relaxed),
        }
    }

    /// Record a retransmitted copy of a message of `elems` elements
    /// (reliable-delivery overhead, not algorithmic volume).
    pub fn record_retransmit(&self, elems: u64) {
        self.fault.retrans_msgs.fetch_add(1, Ordering::Relaxed);
        self.fault.retrans_elems.fetch_add(elems, Ordering::Relaxed);
    }

    /// Record one acknowledgement message (empty payload).
    pub fn record_ack(&self) {
        self.fault.ack_msgs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a fault-dropped message of `elems` elements.
    pub fn record_drop(&self, elems: u64) {
        self.fault.dropped_msgs.fetch_add(1, Ordering::Relaxed);
        self.fault.dropped_elems.fetch_add(elems, Ordering::Relaxed);
    }

    /// Record an injected duplicate copy put on the wire.
    pub fn record_dup_injected(&self) {
        self.fault.dup_msgs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duplicate suppressed at the receiver.
    pub fn record_dup_suppressed(&self) {
        self.fault.dup_suppressed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a Lamport-delayed message.
    pub fn record_delay(&self) {
        self.fault.delayed_msgs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a held-back (reordered) message.
    pub fn record_reorder(&self) {
        self.fault.reordered_msgs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a redistribution message of `elems` elements (inter-layer
    /// shard exchange — real network traffic, but accounted apart from
    /// the per-layer algorithmic volume so that volume stays Eq-exact).
    /// Self-copies are tracked separately, like [`Stats::record_send`].
    pub fn record_redist(&self, elems: u64, is_self: bool) {
        if is_self {
            self.redist.self_msgs.fetch_add(1, Ordering::Relaxed);
            self.redist.self_elems.fetch_add(elems, Ordering::Relaxed);
        } else {
            self.redist.msgs.fetch_add(1, Ordering::Relaxed);
            self.redist.elems.fetch_add(elems, Ordering::Relaxed);
        }
    }

    /// Record a message of `elems` elements sent by `src` to a *different*
    /// rank, or a self-copy when `is_self`.
    pub fn record_send(&self, src: usize, elems: u64, is_self: bool) {
        if is_self {
            self.self_msgs.fetch_add(1, Ordering::Relaxed);
            self.self_elems.fetch_add(elems, Ordering::Relaxed);
        } else {
            self.per_rank_msgs[src].fetch_add(1, Ordering::Relaxed);
            self.per_rank_elems[src].fetch_add(elems, Ordering::Relaxed);
        }
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            per_rank_msgs: self
                .per_rank_msgs
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            per_rank_elems: self
                .per_rank_elems
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            self_msgs: self.self_msgs.load(Ordering::Relaxed),
            self_elems: self.self_elems.load(Ordering::Relaxed),
            fault: FaultTraffic {
                retrans_msgs: self.fault.retrans_msgs.load(Ordering::Relaxed),
                retrans_elems: self.fault.retrans_elems.load(Ordering::Relaxed),
                ack_msgs: self.fault.ack_msgs.load(Ordering::Relaxed),
                dropped_msgs: self.fault.dropped_msgs.load(Ordering::Relaxed),
                dropped_elems: self.fault.dropped_elems.load(Ordering::Relaxed),
                dup_msgs: self.fault.dup_msgs.load(Ordering::Relaxed),
                dup_suppressed: self.fault.dup_suppressed.load(Ordering::Relaxed),
                delayed_msgs: self.fault.delayed_msgs.load(Ordering::Relaxed),
                reordered_msgs: self.fault.reordered_msgs.load(Ordering::Relaxed),
            },
            redist: RedistTraffic {
                msgs: self.redist.msgs.load(Ordering::Relaxed),
                elems: self.redist.elems.load(Ordering::Relaxed),
                self_msgs: self.redist.self_msgs.load(Ordering::Relaxed),
                self_elems: self.redist.self_elems.load(Ordering::Relaxed),
            },
        }
    }
}

/// Snapshot of inter-layer redistribution traffic. All-zero on
/// single-layer runs; on multi-layer runs it carries exactly the
/// shard-exchange volume between consecutive layers' grids, which the
/// network conformance checker pins against the analytic
/// `redistribution_volume` to the element.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RedistTraffic {
    /// Inter-rank redistribution messages.
    pub msgs: u64,
    /// Elements carried by inter-rank redistribution messages.
    pub elems: u64,
    /// Redistribution self-copies (local, not network traffic).
    pub self_msgs: u64,
    /// Elements in redistribution self-copies.
    pub self_elems: u64,
}

impl RedistTraffic {
    /// True when no redistribution traffic was recorded.
    pub fn is_zero(&self) -> bool {
        *self == RedistTraffic::default()
    }

    /// Elementwise difference (`self` after, `earlier` before).
    fn since(&self, earlier: &RedistTraffic) -> RedistTraffic {
        RedistTraffic {
            msgs: self.msgs - earlier.msgs,
            elems: self.elems - earlier.elems,
            self_msgs: self.self_msgs - earlier.self_msgs,
            self_elems: self.self_elems - earlier.self_elems,
        }
    }
}

/// Snapshot of the fault-machinery traffic of a run. All-zero on a
/// fault-free run; zero `total_overhead_elems` means the cost-model
/// counters are untouched by injection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultTraffic {
    /// Retransmitted data messages (reliable delivery).
    pub retrans_msgs: u64,
    /// Elements carried by retransmitted messages.
    pub retrans_elems: u64,
    /// Acknowledgement messages (empty payload).
    pub ack_msgs: u64,
    /// Messages dropped by injection.
    pub dropped_msgs: u64,
    /// Elements in dropped messages.
    pub dropped_elems: u64,
    /// Injected duplicate copies put on the wire.
    pub dup_msgs: u64,
    /// Duplicates suppressed at receivers.
    pub dup_suppressed: u64,
    /// Messages given Lamport clock skew.
    pub delayed_msgs: u64,
    /// Messages held back (reordered).
    pub reordered_msgs: u64,
}

impl FaultTraffic {
    /// True when no fault machinery ever fired.
    pub fn is_zero(&self) -> bool {
        *self == FaultTraffic::default()
    }

    /// Total extra elements the fault machinery put on the wire
    /// (retransmits; injected duplicates carry `retrans`-equivalent
    /// payloads counted there when they are ARQ re-sends).
    pub fn overhead_elems(&self) -> u64 {
        self.retrans_elems
    }

    /// Elementwise difference (`self` after, `earlier` before).
    fn since(&self, earlier: &FaultTraffic) -> FaultTraffic {
        FaultTraffic {
            retrans_msgs: self.retrans_msgs - earlier.retrans_msgs,
            retrans_elems: self.retrans_elems - earlier.retrans_elems,
            ack_msgs: self.ack_msgs - earlier.ack_msgs,
            dropped_msgs: self.dropped_msgs - earlier.dropped_msgs,
            dropped_elems: self.dropped_elems - earlier.dropped_elems,
            dup_msgs: self.dup_msgs - earlier.dup_msgs,
            dup_suppressed: self.dup_suppressed - earlier.dup_suppressed,
            delayed_msgs: self.delayed_msgs - earlier.delayed_msgs,
            reordered_msgs: self.reordered_msgs - earlier.reordered_msgs,
        }
    }
}

/// Wall-clock timing breakdown of a run, summed over ranks: how long
/// rank threads were blocked waiting for messages vs running timed
/// compute sections. Host-dependent (never part of the deterministic
/// [`StatsSnapshot`]); the `bench_comm` suite uses it to split step
/// time into comm-wait and compute.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimingSnapshot {
    /// Nanoseconds spent blocked in receives (summed over ranks).
    pub comm_wait_ns: u64,
    /// Nanoseconds spent in timed compute sections (summed over ranks).
    pub compute_ns: u64,
}

/// An immutable copy of the counters at one point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Outbound message count per sending rank (self-sends excluded).
    pub per_rank_msgs: Vec<u64>,
    /// Outbound element count per sending rank (self-sends excluded).
    pub per_rank_elems: Vec<u64>,
    /// Total self-send messages (local copies).
    pub self_msgs: u64,
    /// Total self-send elements.
    pub self_elems: u64,
    /// Fault-machinery overhead traffic, accounted separately from the
    /// algorithmic volume above.
    pub fault: FaultTraffic,
    /// Inter-layer redistribution traffic, accounted separately so
    /// per-layer algorithmic volumes stay Eq-exact.
    pub redist: RedistTraffic,
}

impl StatsSnapshot {
    /// Total inter-rank messages.
    pub fn total_msgs(&self) -> u64 {
        self.per_rank_msgs.iter().sum()
    }

    /// Total inter-rank elements moved — the paper's "communication
    /// volume".
    pub fn total_elems(&self) -> u64 {
        self.per_rank_elems.iter().sum()
    }

    /// The largest per-rank outbound volume (load-balance indicator).
    pub fn max_rank_elems(&self) -> u64 {
        self.per_rank_elems.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-rank outbound volume.
    pub fn mean_rank_elems(&self) -> f64 {
        if self.per_rank_elems.is_empty() {
            0.0
        } else {
            self.total_elems() as f64 / self.per_rank_elems.len() as f64
        }
    }

    /// Difference of two snapshots (`self` after, `earlier` before):
    /// the traffic of the interval between them.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        assert_eq!(self.per_rank_msgs.len(), earlier.per_rank_msgs.len());
        StatsSnapshot {
            per_rank_msgs: self
                .per_rank_msgs
                .iter()
                .zip(&earlier.per_rank_msgs)
                .map(|(a, b)| a - b)
                .collect(),
            per_rank_elems: self
                .per_rank_elems
                .iter()
                .zip(&earlier.per_rank_elems)
                .map(|(a, b)| a - b)
                .collect(),
            self_msgs: self.self_msgs - earlier.self_msgs,
            self_elems: self.self_elems - earlier.self_elems,
            fault: self.fault.since(&earlier.fault),
            redist: self.redist.since(&earlier.redist),
        }
    }

    /// Simulated per-rank communication time under `params`, the maximum
    /// over ranks (a lower-bound critical-path estimate: sends across
    /// ranks overlap, a rank's own sends serialize).
    pub fn simulated_time(&self, params: &CostParams) -> f64 {
        self.per_rank_msgs
            .iter()
            .zip(&self.per_rank_elems)
            .map(|(&m, &e)| params.alpha * m as f64 + params.beta * e as f64)
            .fold(0.0, f64::max)
    }
}

/// α–β communication cost parameters: a message of `n` elements costs
/// `α + β·n` seconds. Defaults approximate a 100 Gb/s, 1 µs-latency
/// interconnect moving 4-byte words.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Per-message latency (seconds).
    pub alpha: f64,
    /// Per-element transfer time (seconds/element).
    pub beta: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            alpha: 1e-6,
            // 100 Gb/s = 12.5 GB/s → 4-byte elements at 3.125 G elem/s.
            beta: 3.2e-10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new(2);
        s.record_send(0, 10, false);
        s.record_send(0, 5, false);
        s.record_send(1, 7, false);
        s.record_send(1, 3, true); // self-copy
        let snap = s.snapshot();
        assert_eq!(snap.per_rank_msgs, vec![2, 1]);
        assert_eq!(snap.per_rank_elems, vec![15, 7]);
        assert_eq!(snap.total_msgs(), 3);
        assert_eq!(snap.total_elems(), 22);
        assert_eq!(snap.self_elems, 3);
        assert_eq!(snap.max_rank_elems(), 15);
        assert!((snap.mean_rank_elems() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn interval_accounting() {
        let s = Stats::new(1);
        s.record_send(0, 100, false);
        let before = s.snapshot();
        s.record_send(0, 50, false);
        let after = s.snapshot();
        let d = after.since(&before);
        assert_eq!(d.total_elems(), 50);
        assert_eq!(d.total_msgs(), 1);
    }

    #[test]
    fn fault_counters_separate_from_algorithmic_volume() {
        let s = Stats::new(2);
        s.record_send(0, 100, false);
        s.record_retransmit(100);
        s.record_retransmit(100);
        s.record_ack();
        s.record_drop(100);
        s.record_dup_injected();
        s.record_dup_suppressed();
        s.record_delay();
        s.record_reorder();
        let snap = s.snapshot();
        // The algorithmic counters see only the one logical send.
        assert_eq!(snap.total_msgs(), 1);
        assert_eq!(snap.total_elems(), 100);
        assert!(!snap.fault.is_zero());
        assert_eq!(snap.fault.retrans_msgs, 2);
        assert_eq!(snap.fault.retrans_elems, 200);
        assert_eq!(snap.fault.ack_msgs, 1);
        assert_eq!(snap.fault.dropped_msgs, 1);
        assert_eq!(snap.fault.dup_msgs, 1);
        assert_eq!(snap.fault.dup_suppressed, 1);
        assert_eq!(snap.fault.delayed_msgs, 1);
        assert_eq!(snap.fault.reordered_msgs, 1);
        assert_eq!(snap.fault.overhead_elems(), 200);
        // Interval accounting covers the fault counters too.
        let later = {
            s.record_retransmit(7);
            s.snapshot()
        };
        let d = later.since(&snap);
        assert_eq!(d.fault.retrans_msgs, 1);
        assert_eq!(d.fault.retrans_elems, 7);
        assert_eq!(d.fault.ack_msgs, 0);
    }

    #[test]
    fn redist_counters_separate_from_algorithmic_volume() {
        let s = Stats::new(2);
        s.record_send(0, 100, false);
        s.record_redist(40, false);
        s.record_redist(8, true); // local copy
        let snap = s.snapshot();
        // The algorithmic counters see only the one logical send.
        assert_eq!(snap.total_msgs(), 1);
        assert_eq!(snap.total_elems(), 100);
        assert!(!snap.redist.is_zero());
        assert_eq!(snap.redist.msgs, 1);
        assert_eq!(snap.redist.elems, 40);
        assert_eq!(snap.redist.self_msgs, 1);
        assert_eq!(snap.redist.self_elems, 8);
        // Interval accounting covers the redistribution bucket too.
        s.record_redist(5, false);
        let d = s.snapshot().since(&snap);
        assert_eq!(d.total_elems(), 0);
        assert_eq!(d.redist.msgs, 1);
        assert_eq!(d.redist.elems, 5);
    }

    #[test]
    fn fault_free_snapshot_is_zero() {
        let s = Stats::new(1);
        s.record_send(0, 10, false);
        assert!(s.snapshot().fault.is_zero());
    }

    #[test]
    fn timing_is_separate_from_deterministic_counters() {
        let s = Stats::new(1);
        s.record_send(0, 10, false);
        let before = s.snapshot();
        s.record_comm_wait_ns(500);
        s.record_compute_ns(1500);
        s.record_comm_wait_ns(250);
        // Timing accumulates...
        let t = s.timing();
        assert_eq!(t.comm_wait_ns, 750);
        assert_eq!(t.compute_ns, 1500);
        // ...without perturbing the Eq-exact snapshot.
        assert_eq!(s.snapshot(), before);
    }

    #[test]
    fn simulated_time_is_max_over_ranks() {
        let s = Stats::new(2);
        s.record_send(0, 1000, false);
        s.record_send(1, 10, false);
        let p = CostParams {
            alpha: 1.0,
            beta: 0.01,
        };
        let t = s.snapshot().simulated_time(&p);
        assert!((t - (1.0 + 10.0)).abs() < 1e-12); // rank 0 dominates
    }
}

//! Logical multi-dimensional processor grids (paper Sec. 2.2's
//! `P_b × P_k × P_c × P_h × P_w` view), with fiber sub-communicator
//! construction.
//!
//! A [`CartGrid`] is pure topology arithmetic — it maps between linear
//! member indices and multi-dimensional coordinates, and computes the
//! *fibers* (all indices agreeing with a point except along chosen
//! dimensions) that the paper's broadcasts run along. Pairing a fiber's
//! member list with a [`crate::Communicator`] gives the MPI
//! `Cart_sub` equivalent.

use crate::comm::{CommError, Communicator};
use crate::rank::{Msg, Rank};

/// A row-major multi-dimensional grid over member indices
/// `0..dims.product()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CartGrid {
    dims: Vec<usize>,
}

impl CartGrid {
    /// A grid with the given extents (all positive).
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(
            !dims.is_empty() && dims.iter().all(|&d| d > 0),
            "bad grid {dims:?}"
        );
        CartGrid { dims }
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total grid points.
    pub fn total(&self) -> usize {
        self.dims.iter().product()
    }

    /// Linear index of `coords` (row-major: last dimension fastest).
    pub fn index_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len());
        let mut idx = 0;
        for (c, d) in coords.iter().zip(&self.dims) {
            assert!(c < d, "coords {coords:?} out of grid {:?}", self.dims);
            idx = idx * d + c;
        }
        idx
    }

    /// Coordinates of linear index `idx`.
    pub fn coords_of(&self, mut idx: usize) -> Vec<usize> {
        assert!(idx < self.total(), "index {idx} out of grid");
        let mut coords = vec![0; self.dims.len()];
        for i in (0..self.dims.len()).rev() {
            coords[i] = idx % self.dims[i];
            idx /= self.dims[i];
        }
        coords
    }

    /// The fiber through `coords` along `vary`: all grid indices whose
    /// coordinates equal `coords` outside `vary`, ordered row-major over
    /// the `vary` dimensions (so every member computes the identical
    /// list). `vary` must be strictly increasing.
    pub fn fiber(&self, coords: &[usize], vary: &[usize]) -> Vec<usize> {
        assert!(
            vary.windows(2).all(|w| w[0] < w[1]),
            "vary dims must be strictly increasing: {vary:?}"
        );
        assert!(
            vary.iter().all(|&d| d < self.ndim()),
            "vary dim out of range: {vary:?}"
        );
        let mut out = Vec::new();
        let mut cur = coords.to_vec();
        self.fiber_rec(&mut cur, vary, 0, &mut out);
        out
    }

    fn fiber_rec(&self, cur: &mut Vec<usize>, vary: &[usize], level: usize, out: &mut Vec<usize>) {
        if level == vary.len() {
            out.push(self.index_of(cur));
            return;
        }
        let d = vary[level];
        for v in 0..self.dims[d] {
            cur[d] = v;
            self.fiber_rec(cur, vary, level + 1, out);
        }
        cur[d] = 0;
    }

    /// Context id for a fiber communicator: unique per (vary-set, fixed
    /// coordinates), so concurrent fibers never share tags.
    pub fn fiber_ctx(&self, coords: &[usize], vary: &[usize]) -> u32 {
        // Hash the vary mask and the coordinates *outside* vary.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mix = |h: &mut u64, v: u64| {
            *h ^= v;
            *h = h.wrapping_mul(0x100_0000_01b3);
        };
        for &d in vary {
            mix(&mut h, d as u64 + 1);
        }
        mix(&mut h, 0xFF);
        for (i, &c) in coords.iter().enumerate() {
            if !vary.contains(&i) {
                mix(&mut h, ((i as u64) << 32) | c as u64);
            }
        }
        // Keep clear of the hand-assigned low ctx values.
        ((h >> 33) as u32) | 0x8000_0000
    }

    /// Build the fiber sub-communicator through the calling rank's grid
    /// position along `vary`. `members_base` maps grid index → world
    /// rank (usually the identity slice `&world_members`).
    ///
    /// Panics on a bad member mapping; [`CartGrid::try_sub_comm`] is the
    /// non-panicking form for planner-generated grids.
    pub fn sub_comm<'a, T: Msg>(
        &self,
        rank: &'a Rank<T>,
        my_grid_index: usize,
        members_base: &[usize],
        vary: &[usize],
    ) -> Communicator<'a, T> {
        self.try_sub_comm(rank, my_grid_index, members_base, vary)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking fiber sub-communicator construction: a malformed
    /// grid-index → world-rank mapping (duplicates, nonexistent ranks,
    /// a fiber that excludes the caller) is reported as a [`CommError`].
    pub fn try_sub_comm<'a, T: Msg>(
        &self,
        rank: &'a Rank<T>,
        my_grid_index: usize,
        members_base: &[usize],
        vary: &[usize],
    ) -> Result<Communicator<'a, T>, CommError> {
        let coords = self.coords_of(my_grid_index);
        let fiber = self.fiber(&coords, vary);
        let world: Vec<usize> = fiber.iter().map(|&g| members_base[g]).collect();
        let ctx = self.fiber_ctx(&coords, vary);
        Communicator::try_new(rank, world, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};

    #[test]
    fn index_roundtrip() {
        let g = CartGrid::new(vec![2, 3, 4]);
        assert_eq!(g.total(), 24);
        for i in 0..24 {
            assert_eq!(g.index_of(&g.coords_of(i)), i);
        }
        assert_eq!(g.coords_of(0), vec![0, 0, 0]);
        assert_eq!(g.coords_of(1), vec![0, 0, 1]); // last dim fastest
        assert_eq!(g.coords_of(4), vec![0, 1, 0]);
    }

    #[test]
    fn fibers_partition_the_grid() {
        let g = CartGrid::new(vec![2, 3, 4]);
        // Fibers along dim 1 from every point with coords[1] = 0
        // partition the grid into 2·4 = 8 disjoint fibers of length 3.
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..2 {
            for c in 0..4 {
                let f = g.fiber(&[a, 0, c], &[1]);
                assert_eq!(f.len(), 3);
                for idx in f {
                    assert!(seen.insert(idx), "index {idx} in two fibers");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn fiber_order_is_row_major() {
        let g = CartGrid::new(vec![2, 2, 2]);
        let f = g.fiber(&[1, 0, 1], &[0, 1]);
        // vary over dims 0,1 with dim2 fixed at 1: (0,0,1),(0,1,1),(1,0,1),(1,1,1)
        assert_eq!(
            f,
            vec![
                g.index_of(&[0, 0, 1]),
                g.index_of(&[0, 1, 1]),
                g.index_of(&[1, 0, 1]),
                g.index_of(&[1, 1, 1])
            ]
        );
    }

    #[test]
    fn fiber_same_for_all_members() {
        let g = CartGrid::new(vec![3, 4]);
        let f0 = g.fiber(&[0, 2], &[0]);
        let f1 = g.fiber(&[2, 2], &[0]);
        assert_eq!(f0, f1, "fiber must not depend on position along vary dims");
    }

    #[test]
    fn distinct_fibers_distinct_ctx() {
        let g = CartGrid::new(vec![2, 4]);
        let c_row0 = g.fiber_ctx(&[0, 1], &[1]);
        let c_row1 = g.fiber_ctx(&[1, 1], &[1]);
        assert_ne!(c_row0, c_row1, "different rows must get different ctx");
        let c_same = g.fiber_ctx(&[0, 3], &[1]);
        assert_eq!(
            c_row0, c_same,
            "same fiber, same ctx regardless of vary coord"
        );
    }

    #[test]
    fn grid_subcomm_broadcasts_along_fiber() {
        // 2×3 grid: broadcast along dim 1 (rows of 3).
        let g = CartGrid::new(vec![2, 3]);
        let world: Vec<usize> = (0..6).collect();
        let r = Machine::run::<f64, _, _>(6, MachineConfig::default(), move |rank| {
            let comm = g.sub_comm(rank, rank.id(), &world, &[1]);
            assert_eq!(comm.size(), 3);
            let row = rank.id() / 3;
            let mut buf = if comm.me() == 0 {
                vec![row as f64 * 10.0]
            } else {
                vec![-1.0]
            };
            comm.bcast(0, &mut buf);
            buf[0]
        });
        assert_eq!(r.results, vec![0.0, 0.0, 0.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "out of grid")]
    fn bad_coords_panic() {
        let g = CartGrid::new(vec![2, 2]);
        let _ = g.index_of(&[2, 0]);
    }
}

//! Communicators and collective operations.
//!
//! A [`Communicator`] is an ordered subset of the machine's ranks, like
//! an `MPI_Comm`. Collectives are implemented with the standard
//! algorithms — binomial trees for broadcast/reduce, direct exchange for
//! reduce-scatter/gather/scatter/all-to-all, a ring for all-gather, and
//! reduce-scatter + all-gather for large all-reduce — **on top of the
//! point-to-point layer**, so every element a collective moves is
//! counted by the machine's [`crate::Stats`] along its real path.
//!
//! ### Volume cheat-sheet (n members, payload of `v` elements)
//!
//! | collective        | total inter-rank volume        |
//! |-------------------|--------------------------------|
//! | `bcast`           | `(n−1)·v`                      |
//! | `reduce`          | `(n−1)·v`                      |
//! | `allgather` (ring)| `(n−1)·Σ chunk = (n−1)·v`      |
//! | `reduce_scatter`  | `Σ_i (v − chunk_i) ≈ (n−1)/n·v·n` |
//! | `allreduce`       | `≈ 2·(n−1)/n·v·n` (large), `2(n−1)v` (tree, small) |
//!
//! The tests pin these counts exactly.
//!
//! ### Tag discipline
//!
//! Each communicator carries a caller-supplied *context id* and an
//! internal per-collective sequence number; both are folded into the
//! reserved (top-bit-set) tag space. All members must create matching
//! communicators (same ordered member list, same context id) and call
//! the same collectives in the same order — the usual MPI contract.

use crate::rank::{Msg, Rank, RankId, Tag};
use std::cell::Cell;

/// Reserved tag space marker for collective traffic.
const COLL_BIT: u64 = 1 << 63;

/// Collective operation codes (folded into tags for cross-talk safety).
#[derive(Clone, Copy)]
#[repr(u8)]
enum Op {
    Bcast = 1,
    Reduce = 2,
    Gather = 3,
    Scatter = 4,
    AllGather = 5,
    ReduceScatter = 6,
    Barrier = 7,
    AllToAll = 8,
    SendRecv = 9,
}

/// Broadcast algorithm selector for [`Communicator::bcast_algo`]. All
/// three move the same total volume `(n−1)·v`; they differ in how the
/// α–β makespan scales with the member count `n` and payload `v`:
///
/// | algorithm | makespan (α–β model)          | regime it wins        |
/// |-----------|-------------------------------|-----------------------|
/// | linear    | `(n−1)·(α + β·v)`             | never (baseline)      |
/// | binomial  | `≈ ⌈log₂ n⌉·(α + β·v)`        | small payloads        |
/// | ring      | `(n+S−2)·(α + β·v/S)`         | large payloads        |
///
/// (`S` = segment count of the pipelined ring.) `bench_collectives`
/// measures all three against the paper's rotating-root schedule on the
/// discrete-event backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcastAlgo {
    /// Root sends to every other member directly: `n−1` serialized
    /// sends at the root — the point-to-point baseline, and exactly the
    /// shape of one step of the paper's rotating owner-broadcast
    /// schedule (each step's owner plays root).
    Linear,
    /// Binomial tree — what [`Communicator::bcast`] uses. Latency-
    /// optimal: `⌈log₂ n⌉` dependent hops.
    Binomial,
    /// Pipelined chain `root → root+1 → … → root+n−1`, payload split
    /// into `min(v, n)` segments. Bandwidth-optimal for large `v`: the
    /// per-member cost approaches `β·v` regardless of `n`.
    Ring,
}

/// Error constructing a [`Communicator`]: the member list is unusable.
/// Planner-generated lists surface these as errors instead of aborts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The constructing rank does not appear in the member list.
    NotAMember {
        /// The constructing rank.
        rank: RankId,
        /// The offending member list.
        members: Vec<RankId>,
    },
    /// A rank appears more than once in the member list.
    DuplicateMember {
        /// The offending member list.
        members: Vec<RankId>,
    },
    /// A member id does not exist on this machine.
    UnknownRank {
        /// The out-of-range member id.
        member: RankId,
        /// Machine size.
        size: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::NotAMember { rank, members } => write!(
                f,
                "rank {rank} constructing a communicator it is not a member of: {members:?}"
            ),
            CommError::DuplicateMember { members } => {
                write!(f, "duplicate members in communicator: {members:?}")
            }
            CommError::UnknownRank { member, size } => write!(
                f,
                "communicator member {member} does not exist on a {size}-rank machine"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// An ordered group of ranks supporting collective operations.
///
/// The struct is a per-rank *handle*: every member constructs its own
/// `Communicator` with the identical member list and context.
pub struct Communicator<'a, T: Msg> {
    rank: &'a Rank<T>,
    members: Vec<RankId>,
    me: usize,
    ctx: u32,
    seq: Cell<u32>,
}

impl<'a, T: Msg> Communicator<'a, T> {
    /// Build a communicator handle over `members` (world rank ids; must
    /// contain the calling rank exactly once). `ctx` distinguishes
    /// communicators with identical member lists used concurrently —
    /// e.g. the different fibers of a processor grid.
    ///
    /// Panics on a bad member list; [`Communicator::try_new`] is the
    /// non-panicking form.
    pub fn new(rank: &'a Rank<T>, members: Vec<RankId>, ctx: u32) -> Self {
        Communicator::try_new(rank, members, ctx).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking constructor: a malformed member list (caller not a
    /// member, duplicate entries, nonexistent rank ids) is reported as a
    /// [`CommError`] instead of aborting the rank.
    pub fn try_new(rank: &'a Rank<T>, members: Vec<RankId>, ctx: u32) -> Result<Self, CommError> {
        if let Some(&bad) = members.iter().find(|&&m| m >= rank.size()) {
            return Err(CommError::UnknownRank {
                member: bad,
                size: rank.size(),
            });
        }
        if members
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            != members.len()
        {
            return Err(CommError::DuplicateMember { members });
        }
        let Some(me) = members.iter().position(|&m| m == rank.id()) else {
            return Err(CommError::NotAMember {
                rank: rank.id(),
                members,
            });
        };
        Ok(Communicator {
            rank,
            members,
            me,
            ctx,
            seq: Cell::new(0),
        })
    }

    /// A communicator over all ranks of the machine.
    pub fn world(rank: &'a Rank<T>) -> Self {
        let members = (0..rank.size()).collect();
        Communicator::new(rank, members, 0)
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index within the communicator (`0..size`).
    pub fn me(&self) -> usize {
        self.me
    }

    /// The ordered member list (world rank ids).
    pub fn members(&self) -> &[RankId] {
        &self.members
    }

    /// World rank id of member index `i`.
    pub fn world_rank(&self, i: usize) -> RankId {
        self.members[i]
    }

    fn next_tag(&self, op: Op) -> Tag {
        let s = self.seq.get();
        self.seq.set(s.wrapping_add(1));
        COLL_BIT | ((self.ctx as u64) << 28) | ((s as u64 & 0xF_FFFF) << 8) | op as u8 as u64
    }

    fn send_m(&self, member: usize, tag: Tag, data: &[T]) {
        self.rank.send(self.members[member], tag, data);
    }

    fn recv_m(&self, member: usize, tag: Tag) -> Vec<T> {
        self.rank.recv(self.members[member], tag)
    }

    /// Broadcast from member index `root`: on the root, `buf` is the
    /// payload; on others, `buf`'s contents are replaced (which may
    /// reallocate — hence `&mut Vec`, deliberately). All members must
    /// pass buffers of identical length. Binomial tree: `⌈log₂ n⌉`
    /// rounds, total volume `(n−1)·len`.
    ///
    /// Implemented as [`Communicator::ibcast`] + immediate wait — same
    /// tree, same per-edge message sequence.
    #[allow(clippy::ptr_arg)]
    pub fn bcast(&self, root: usize, buf: &mut Vec<T>) {
        *buf = self.ibcast(root, std::mem::take(buf)).wait();
    }

    /// Nonblocking broadcast start. The root passes the payload (its
    /// tree sends happen eagerly, right here); non-roots pass any vector
    /// (ignored — conventionally `Vec::new()`, so no dead buffer is
    /// allocated) and perform their receive-and-forward at
    /// [`PendingBcast::wait`], which returns the broadcast data on every
    /// member.
    ///
    /// The tag is drawn at post time, so members may interleave other
    /// collectives between post and wait as long as every member posts
    /// collectives on this communicator in the same order — the usual
    /// SPMD contract, unchanged. The message tree and per-edge order are
    /// identical to the blocking [`Communicator::bcast`], which keeps
    /// volumes, counters and makespans mode-independent.
    pub fn ibcast(&self, root: usize, payload: Vec<T>) -> PendingBcast<'_, 'a, T> {
        let n = self.size();
        assert!(root < n, "bcast root {root} out of range");
        if n == 1 {
            return PendingBcast {
                comm: self,
                root,
                tag: 0,
                payload: Some(payload),
            };
        }
        let tag = self.next_tag(Op::Bcast);
        if self.me == root {
            let (_, children) = bcast_edges(n, root, self.me);
            for child in children {
                self.send_m(child, tag, &payload);
            }
            PendingBcast {
                comm: self,
                root,
                tag,
                payload: Some(payload),
            }
        } else {
            PendingBcast {
                comm: self,
                root,
                tag,
                payload: None,
            }
        }
    }

    /// Broadcast from member index `root` using an explicit algorithm
    /// (see [`BcastAlgo`]); `BcastAlgo::Binomial` is bit-identical to
    /// [`Communicator::bcast`]. Same contract: all members pass buffers
    /// of identical length, non-root contents are replaced. All
    /// algorithms move exactly `(n−1)·len` elements — they differ only
    /// in dependency structure, i.e. in the α–β makespan.
    #[allow(clippy::ptr_arg)]
    pub fn bcast_algo(&self, root: usize, buf: &mut Vec<T>, algo: BcastAlgo) {
        let n = self.size();
        assert!(root < n, "bcast root {root} out of range");
        if n == 1 {
            return;
        }
        match algo {
            BcastAlgo::Binomial => self.bcast(root, buf),
            BcastAlgo::Linear => {
                let tag = self.next_tag(Op::Bcast);
                if self.me == root {
                    // Rotated send order (root+1, root+2, … wrapping):
                    // irrelevant for a single broadcast, but composing
                    // rotating-root rounds (the paper's schedule) then
                    // pipelines — each round's first message feeds the
                    // next round's root instead of rank 0.
                    for off in 1..n {
                        self.send_m((root + off) % n, tag, buf);
                    }
                } else {
                    *buf = self.recv_m(root, tag);
                }
            }
            BcastAlgo::Ring => {
                let tag = self.next_tag(Op::Bcast);
                // Pipelined segments: enough to hide the chain depth,
                // never more than the payload can be split into.
                let segs = buf.len().min(n).max(1);
                let counts = even_counts(buf.len(), segs);
                let pos = (self.me + n - root) % n; // position along the chain
                let next = (pos + 1 < n).then(|| (self.me + 1) % n);
                if pos == 0 {
                    let offsets = prefix_sums(&counts);
                    if let Some(nx) = next {
                        for (&off, &cnt) in offsets.iter().zip(&counts) {
                            self.send_m(nx, tag, &buf[off..off + cnt]);
                        }
                    }
                } else {
                    let prev = (self.me + n - 1) % n;
                    let mut out = Vec::with_capacity(buf.len());
                    for &cnt in &counts {
                        let seg = self.recv_m(prev, tag);
                        assert_eq!(seg.len(), cnt, "ring bcast segment mismatch");
                        if let Some(nx) = next {
                            self.send_m(nx, tag, &seg);
                        }
                        out.extend_from_slice(&seg);
                    }
                    *buf = out;
                }
            }
        }
    }

    /// Reduce (elementwise `+=`) to member index `root`. Every member
    /// passes its contribution in `buf`; on return the root's `buf`
    /// holds the sum (others' buffers hold partial sums — treat as
    /// scratch). Binomial tree, total volume `(n−1)·len`.
    /// (`&mut Vec` for symmetry with [`Communicator::bcast`].)
    #[allow(clippy::ptr_arg)]
    pub fn reduce(&self, root: usize, buf: &mut Vec<T>) {
        let n = self.size();
        assert!(root < n, "reduce root {root} out of range");
        if n == 1 {
            return;
        }
        let tag = self.next_tag(Op::Reduce);
        let v = (self.me + n - root) % n;
        let mut mask = 1usize;
        while mask < n {
            if v & mask != 0 {
                let dst = ((v - mask) + root) % n;
                self.send_m(dst, tag, buf);
                return;
            }
            let peer_v = v | mask;
            if peer_v < n {
                let part = self.recv_m((peer_v + root) % n, tag);
                assert_eq!(part.len(), buf.len(), "reduce length mismatch");
                for (a, b) in buf.iter_mut().zip(part) {
                    *a += b;
                }
            }
            mask <<= 1;
        }
    }

    /// All-reduce: every member ends with the elementwise sum. Small
    /// payloads (`< 4096` elements) use reduce + broadcast
    /// (`2(n−1)·len` volume); larger ones use reduce-scatter +
    /// all-gather (`≈ 2·len·(n−1)` total but `2·len·(n−1)/n` *per rank*,
    /// the bandwidth-optimal Rabenseifner schedule).
    pub fn allreduce(&self, buf: &mut Vec<T>) {
        let n = self.size();
        if n == 1 {
            return;
        }
        if buf.len() < 4096 || buf.len() < n {
            self.reduce(0, buf);
            self.bcast(0, buf);
        } else {
            let counts = even_counts(buf.len(), n);
            let mine = self.reduce_scatter(buf, &counts);
            let gathered = self.allgather_varying(&mine);
            buf.clear();
            for chunk in gathered {
                buf.extend_from_slice(&chunk);
            }
        }
    }

    /// Reduce-scatter with per-member chunk `counts` (must sum to
    /// `buf.len()`, identical on all members): returns this member's
    /// reduced chunk. Direct pairwise exchange: each member sends `n−1`
    /// chunks.
    pub fn reduce_scatter(&self, buf: &[T], counts: &[usize]) -> Vec<T> {
        let n = self.size();
        assert_eq!(counts.len(), n, "counts per member");
        assert_eq!(
            counts.iter().sum::<usize>(),
            buf.len(),
            "counts must sum to len"
        );
        let tag = self.next_tag(Op::ReduceScatter);
        let offsets = prefix_sums(counts);
        let my_off = offsets[self.me];
        let my_len = counts[self.me];
        let mut acc = buf[my_off..my_off + my_len].to_vec();
        // Send everyone else their chunk of my data.
        for j in 0..n {
            if j == self.me {
                continue;
            }
            self.send_m(j, tag, &buf[offsets[j]..offsets[j] + counts[j]]);
        }
        // Accumulate everyone else's chunk of my slot.
        for j in 0..n {
            if j == self.me {
                continue;
            }
            let part = self.recv_m(j, tag);
            assert_eq!(part.len(), my_len, "reduce_scatter chunk mismatch");
            for (a, b) in acc.iter_mut().zip(part) {
                *a += b;
            }
        }
        acc
    }

    /// Ring all-gather of per-member chunks (sizes may differ). Returns
    /// the chunks indexed by member. Total volume `(n−1)·Σ chunks`.
    pub fn allgather_varying(&self, mine: &[T]) -> Vec<Vec<T>> {
        let n = self.size();
        let tag = self.next_tag(Op::AllGather);
        let mut out: Vec<Vec<T>> = vec![Vec::new(); n];
        out[self.me] = mine.to_vec();
        if n == 1 {
            return out;
        }
        let right = (self.me + 1) % n;
        let left = (self.me + n - 1) % n;
        // At step s we forward the chunk originated by (me − s) mod n.
        let mut carry = mine.to_vec();
        for s in 0..n - 1 {
            self.send_m(right, tag, &carry);
            let incoming = self.recv_m(left, tag);
            let origin = (self.me + n - s - 1) % n;
            out[origin] = incoming.clone();
            carry = incoming;
        }
        out
    }

    /// Convenience all-gather of equal-size chunks, flattened in member
    /// order.
    pub fn allgather(&self, mine: &[T]) -> Vec<T> {
        self.allgather_varying(mine).concat()
    }

    /// Gather per-member chunks to member `root`; returns `Some(chunks)`
    /// on the root, `None` elsewhere. Direct sends.
    pub fn gather(&self, root: usize, mine: &[T]) -> Option<Vec<Vec<T>>> {
        let n = self.size();
        let tag = self.next_tag(Op::Gather);
        if self.me != root {
            self.send_m(root, tag, mine);
            return None;
        }
        let mut out: Vec<Vec<T>> = vec![Vec::new(); n];
        out[root] = mine.to_vec();
        for (j, slot) in out.iter_mut().enumerate() {
            if j != root {
                *slot = self.recv_m(j, tag);
            }
        }
        Some(out)
    }

    /// Scatter chunks from member `root` (which passes `Some(chunks)`,
    /// one per member; others pass `None`). Returns this member's chunk.
    pub fn scatter(&self, root: usize, chunks: Option<&[Vec<T>]>) -> Vec<T> {
        let n = self.size();
        let tag = self.next_tag(Op::Scatter);
        if self.me == root {
            let chunks = chunks.expect("root must provide chunks");
            assert_eq!(chunks.len(), n, "one chunk per member");
            for (j, chunk) in chunks.iter().enumerate() {
                if j != root {
                    self.send_m(j, tag, chunk);
                }
            }
            chunks[root].clone()
        } else {
            self.recv_m(root, tag)
        }
    }

    /// All-to-all personalized exchange: `outgoing[j]` goes to member
    /// `j`; returns the chunks received, indexed by source member.
    pub fn alltoall(&self, outgoing: &[Vec<T>]) -> Vec<Vec<T>> {
        let n = self.size();
        assert_eq!(outgoing.len(), n, "one outgoing chunk per member");
        let tag = self.next_tag(Op::AllToAll);
        let mut incoming: Vec<Vec<T>> = vec![Vec::new(); n];
        incoming[self.me] = outgoing[self.me].clone();
        for (j, chunk) in outgoing.iter().enumerate() {
            if j != self.me {
                self.send_m(j, tag, chunk);
            }
        }
        for (j, slot) in incoming.iter_mut().enumerate() {
            if j != self.me {
                *slot = self.recv_m(j, tag);
            }
        }
        incoming
    }

    /// Simultaneous exchange: send `data` to member `dst` and receive
    /// the message member `src` sent us, without deadlocking (send
    /// first — the transport is buffered). The shift primitive of
    /// Cannon-style algorithms.
    pub fn sendrecv(&self, dst: usize, src: usize, data: &[T]) -> Vec<T> {
        self.sendrecv_vec(dst, src, data.to_vec())
    }

    /// [`Communicator::sendrecv`] taking the outgoing buffer by value:
    /// the vector moves into the destination mailbox without the
    /// per-hop `to_vec()` copy of the slice form. The shift hot path of
    /// the distmm pipelines.
    pub fn sendrecv_vec(&self, dst: usize, src: usize, data: Vec<T>) -> Vec<T> {
        self.isendrecv(dst, src, data).wait()
    }

    /// Nonblocking sendrecv start: the outgoing vector is posted (moved
    /// onto the wire) immediately; the matching receive is deferred to
    /// [`PendingRecv::wait`]. Tag and traffic accounting are identical
    /// to the blocking [`Communicator::sendrecv`].
    pub fn isendrecv(&self, dst: usize, src: usize, data: Vec<T>) -> PendingRecv<'_, 'a, T> {
        let tag = self.next_tag(Op::SendRecv);
        self.rank.send_vec(self.members[dst], tag, data);
        PendingRecv {
            comm: self,
            src,
            tag,
        }
    }

    /// Split into disjoint sub-communicators by `color` (like
    /// `MPI_Comm_split` with `key = member index`): every member calls
    /// this with its own color; members sharing a color form a new
    /// communicator ordered by their index in `self`. Purely local —
    /// requires `colors` to list every member's color (deterministically
    /// known, as all our topologies are static).
    pub fn split(&self, colors: &[u32]) -> Communicator<'a, T> {
        assert_eq!(colors.len(), self.size(), "one color per member");
        let my_color = colors[self.me];
        let members: Vec<RankId> = self
            .members
            .iter()
            .zip(colors)
            .filter(|(_, &c)| c == my_color)
            .map(|(&m, _)| m)
            .collect();
        // Derive a child ctx unique per (parent ctx, color).
        let ctx = self
            .ctx
            .wrapping_mul(0x9E37)
            .wrapping_add(my_color)
            .wrapping_add(0x4000_0000);
        Communicator::new(self.rank, members, ctx)
    }

    /// Dissemination barrier: `⌈log₂ n⌉` rounds of empty messages.
    pub fn barrier(&self) {
        let n = self.size();
        if n == 1 {
            return;
        }
        let tag = self.next_tag(Op::Barrier);
        let mut step = 1usize;
        while step < n {
            let to = (self.me + step) % n;
            let from = (self.me + n - step) % n;
            self.send_m(to, tag, &[]);
            let _ = self.recv_m(from, tag);
            step <<= 1;
        }
    }
}

/// Binomial-tree edges of member `me` in the broadcast tree rooted at
/// `root` (member indices, `n` members): the parent we receive from
/// (`None` on the root) and the children we forward to, in send order.
/// Shared by the blocking and nonblocking broadcast so both walk the
/// identical tree.
fn bcast_edges(n: usize, root: usize, me: usize) -> (Option<usize>, Vec<usize>) {
    let v = (me + n - root) % n; // virtual rank, root = 0
    let parent = if v == 0 {
        None
    } else {
        // The highest set bit of v identifies the sender: v − msb(v).
        let msb = 1usize << (usize::BITS - 1 - v.leading_zeros());
        Some(((v - msb) + root) % n)
    };
    // Children of v are v + mask, for masks above the bit that
    // delivered to us (all masks, for the root).
    let mut mask = if v == 0 {
        1
    } else {
        1usize << (usize::BITS - v.leading_zeros())
    };
    let mut children = Vec::new();
    while mask < n {
        let child_v = v + mask;
        if child_v < n && (v & mask) == 0 {
            children.push((child_v + root) % n);
        }
        mask <<= 1;
    }
    (parent, children)
}

/// A posted nonblocking broadcast (see [`Communicator::ibcast`]).
#[must_use = "every member must wait the broadcast to keep the tree flowing"]
pub struct PendingBcast<'c, 'a, T: Msg> {
    comm: &'c Communicator<'a, T>,
    root: usize,
    tag: Tag,
    /// `Some` on the root (tree sends already posted) and for the
    /// trivial single-member group; `None` on members that still owe
    /// their receive-and-forward.
    payload: Option<Vec<T>>,
}

impl<T: Msg> PendingBcast<'_, '_, T> {
    /// The posting root (member index).
    pub fn root(&self) -> usize {
        self.root
    }

    /// Complete the broadcast: the root gets its payload back, other
    /// members block for their parent's message, forward it down their
    /// subtree, and return it.
    pub fn wait(self) -> Vec<T> {
        if let Some(data) = self.payload {
            return data;
        }
        let n = self.comm.size();
        let (parent, children) = bcast_edges(n, self.root, self.comm.me());
        let parent = parent.expect("non-root member has a parent");
        let data = self.comm.recv_m(parent, self.tag);
        for child in children {
            self.comm.send_m(child, self.tag, &data);
        }
        data
    }
}

/// A posted nonblocking exchange (see [`Communicator::isendrecv`]): the
/// send already happened; this is the deferred receive half.
#[must_use = "an unawaited isendrecv never receives its shift partner's block"]
pub struct PendingRecv<'c, 'a, T: Msg> {
    comm: &'c Communicator<'a, T>,
    src: usize,
    tag: Tag,
}

impl<T: Msg> PendingRecv<'_, '_, T> {
    /// The posted source (member index).
    pub fn src(&self) -> usize {
        self.src
    }

    /// Block until the partner's message arrives and return it.
    pub fn wait(self) -> Vec<T> {
        self.comm.recv_m(self.src, self.tag)
    }
}

/// Split `len` into `n` nearly-even counts (first `len % n` get one
/// extra).
pub fn even_counts(len: usize, n: usize) -> Vec<usize> {
    let base = len / n;
    let extra = len % n;
    (0..n).map(|i| base + usize::from(i < extra)).collect()
}

fn prefix_sums(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &c in counts {
        out.push(acc);
        acc += c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};

    fn run_world<R: Send>(
        p: usize,
        f: impl Fn(&Communicator<'_, f64>) -> R + Send + Sync,
    ) -> crate::machine::RunReport<R> {
        Machine::run::<f64, _, _>(p, MachineConfig::default(), |rank| {
            let comm = Communicator::world(rank);
            f(&comm)
        })
    }

    #[test]
    fn bcast_all_sizes_all_roots() {
        for p in [1usize, 2, 3, 4, 5, 7, 8, 16] {
            for root in [0, p / 2, p - 1] {
                let r = run_world(p, |comm| {
                    let mut buf = if comm.me() == root {
                        vec![1.0, 2.0, 3.0]
                    } else {
                        vec![0.0; 3]
                    };
                    comm.bcast(root, &mut buf);
                    buf
                });
                for (i, res) in r.results.iter().enumerate() {
                    assert_eq!(res, &vec![1.0, 2.0, 3.0], "p={p} root={root} rank={i}");
                }
                // Binomial tree: exactly (p−1) messages of 3 elements.
                assert_eq!(r.stats.total_elems(), 3 * (p as u64 - 1), "p={p}");
                assert_eq!(r.stats.total_msgs(), p as u64 - 1);
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            let root = p - 1;
            let r = run_world(p, |comm| {
                let me = comm.me() as f64;
                let mut buf = vec![me, 2.0 * me];
                comm.reduce(root, &mut buf);
                buf
            });
            let s: f64 = (0..p).map(|x| x as f64).sum();
            assert_eq!(r.results[root], vec![s, 2.0 * s], "p={p}");
            assert_eq!(r.stats.total_elems(), 2 * (p as u64 - 1));
        }
    }

    #[test]
    fn allreduce_small_and_large() {
        for (p, len) in [(4usize, 16usize), (4, 10_000), (7, 9_999)] {
            let r = run_world(p, move |comm| {
                let mut buf: Vec<f64> = (0..len).map(|i| (i % 17) as f64).collect();
                comm.allreduce(&mut buf);
                buf
            });
            let expect: Vec<f64> = (0..len).map(|i| (i % 17) as f64 * p as f64).collect();
            for res in &r.results {
                assert_eq!(res, &expect, "p={p} len={len}");
            }
        }
    }

    #[test]
    fn allreduce_large_volume_is_rabenseifner() {
        let (p, len) = (8usize, 8192usize);
        let r = run_world(p, move |comm| {
            let mut buf = vec![1.0f64; len];
            comm.allreduce(&mut buf);
            buf.len()
        });
        // reduce_scatter: each rank sends len − chunk = len·(p−1)/p;
        // allgather ring: same again. Total = 2·len·(p−1).
        assert_eq!(r.stats.total_elems(), 2 * (len as u64) * (p as u64 - 1));
    }

    #[test]
    fn reduce_scatter_returns_owned_chunk() {
        let p = 4;
        let r = run_world(p, |comm| {
            let buf: Vec<f64> = (0..8).map(|i| i as f64).collect();
            let counts = vec![2, 2, 2, 2];
            comm.reduce_scatter(&buf, &counts)
        });
        for (i, res) in r.results.iter().enumerate() {
            let expect: Vec<f64> = (0..2).map(|j| ((2 * i + j) as f64) * p as f64).collect();
            assert_eq!(res, &expect, "member {i}");
        }
    }

    #[test]
    fn allgather_ring_order_and_volume() {
        for p in [2usize, 3, 6] {
            let r = run_world(p, |comm| {
                let mine = vec![comm.me() as f64; comm.me() + 1]; // varying sizes
                comm.allgather_varying(&mine)
            });
            let total: u64 = (1..=p as u64).sum();
            for res in &r.results {
                for (j, chunk) in res.iter().enumerate() {
                    assert_eq!(chunk, &vec![j as f64; j + 1]);
                }
            }
            // Ring: every chunk travels p−1 hops.
            assert_eq!(r.stats.total_elems(), (p as u64 - 1) * total);
        }
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        let p = 5;
        let r = run_world(p, |comm| {
            let mine = vec![comm.me() as f64 + 0.5];
            let gathered = comm.gather(2, &mine);
            if comm.me() == 2 {
                let chunks = gathered.unwrap();
                comm.scatter(2, Some(&chunks))
            } else {
                assert!(gathered.is_none());
                comm.scatter(2, None)
            }
        });
        for (i, res) in r.results.iter().enumerate() {
            assert_eq!(res, &vec![i as f64 + 0.5]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let p = 4;
        let r = run_world(p, |comm| {
            let outgoing: Vec<Vec<f64>> =
                (0..p).map(|j| vec![(comm.me() * 10 + j) as f64]).collect();
            comm.alltoall(&outgoing)
        });
        for (i, res) in r.results.iter().enumerate() {
            for (j, chunk) in res.iter().enumerate() {
                assert_eq!(chunk, &vec![(j * 10 + i) as f64], "rank {i} from {j}");
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        let p = 8;
        Machine::run::<f64, _, _>(p, MachineConfig::default(), |rank| {
            let comm = Communicator::world(rank);
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, every rank must have incremented.
            if before.load(Ordering::SeqCst) != p {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn sub_communicators_with_distinct_ctx() {
        // Two groups run concurrent broadcasts without cross-talk.
        let p = 4;
        let r = Machine::run::<f64, _, _>(p, MachineConfig::default(), |rank| {
            let group = rank.id() % 2; // evens, odds
            let members: Vec<usize> = (0..p).filter(|x| x % 2 == group).collect();
            let comm = Communicator::new(rank, members, group as u32 + 1);
            let mut buf = if comm.me() == 0 {
                vec![group as f64 * 100.0]
            } else {
                vec![0.0]
            };
            comm.bcast(0, &mut buf);
            buf[0]
        });
        assert_eq!(r.results, vec![0.0, 100.0, 0.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn non_member_construction_panics() {
        Machine::run::<f64, _, _>(2, MachineConfig::default(), |rank| {
            let _ = Communicator::new(rank, vec![1 - rank.id()], 0);
        });
    }

    #[test]
    fn try_new_reports_bad_member_lists_as_errors() {
        let r = Machine::run::<f64, _, _>(2, MachineConfig::default(), |rank| {
            let not_member = Communicator::try_new(rank, vec![1 - rank.id()], 0).err();
            let dup = Communicator::try_new(rank, vec![rank.id(), rank.id()], 0).err();
            let unknown = Communicator::try_new(rank, vec![rank.id(), 7], 0).err();
            let ok = Communicator::try_new(rank, vec![0, 1], 0).is_ok();
            (not_member, dup, unknown, ok)
        });
        let (nm, dup, unk, ok) = &r.results[0];
        assert!(matches!(nm, Some(CommError::NotAMember { rank: 0, .. })));
        assert!(matches!(dup, Some(CommError::DuplicateMember { .. })));
        assert!(matches!(
            unk,
            Some(CommError::UnknownRank { member: 7, size: 2 })
        ));
        assert!(ok);
    }

    #[test]
    fn sendrecv_ring_shift() {
        let p = 5;
        let r = run_world(p, |comm| {
            let right = (comm.me() + 1) % comm.size();
            let left = (comm.me() + comm.size() - 1) % comm.size();
            // Shift my id one step right around the ring.
            let got = comm.sendrecv(right, left, &[comm.me() as f64]);
            got[0]
        });
        for (i, v) in r.results.iter().enumerate() {
            assert_eq!(*v, ((i + p - 1) % p) as f64, "rank {i}");
        }
        // p messages of 1 element each.
        assert_eq!(r.stats.total_elems(), p as u64);
    }

    #[test]
    fn split_forms_disjoint_groups() {
        let r = run_world(6, |comm| {
            // Colors: even/odd member index.
            let colors: Vec<u32> = (0..comm.size()).map(|i| (i % 2) as u32).collect();
            let sub = comm.split(&colors);
            assert_eq!(sub.size(), 3);
            let mut buf = vec![comm.me() as f64];
            sub.allreduce(&mut buf);
            buf[0]
        });
        // Evens: 0+2+4 = 6; odds: 1+3+5 = 9.
        assert_eq!(r.results, vec![6.0, 9.0, 6.0, 9.0, 6.0, 9.0]);
    }

    #[test]
    fn ibcast_matches_bcast_bitwise_and_in_counters() {
        for p in [2usize, 3, 5, 8] {
            for root in [0, p - 1] {
                let payload: Vec<f64> = (0..7).map(|i| i as f64 * 1.5).collect();
                let blocking = {
                    let pl = payload.clone();
                    run_world(p, move |comm| {
                        let mut buf = if comm.me() == root {
                            pl.clone()
                        } else {
                            vec![0.0; pl.len()]
                        };
                        comm.bcast(root, &mut buf);
                        buf
                    })
                };
                let pipelined = {
                    let pl = payload.clone();
                    run_world(p, move |comm| {
                        let data = if comm.me() == root {
                            pl.clone()
                        } else {
                            Vec::new()
                        };
                        let pending = comm.ibcast(root, data);
                        assert_eq!(pending.root(), root);
                        pending.wait()
                    })
                };
                assert_eq!(blocking.results, pipelined.results, "p={p} root={root}");
                assert_eq!(blocking.stats, pipelined.stats, "p={p} root={root}");
                assert_eq!(blocking.makespan, pipelined.makespan, "p={p} root={root}");
            }
        }
    }

    #[test]
    fn two_ibcasts_in_flight_resolve_by_tag() {
        // The double-buffer shape: post broadcast t and t+1, wait t
        // first even though t+1's root sends may already be parked.
        let p = 4;
        let r = run_world(p, |comm| {
            let a = comm.ibcast(0, if comm.me() == 0 { vec![1.0] } else { vec![] });
            let b = comm.ibcast(1, if comm.me() == 1 { vec![2.0] } else { vec![] });
            let va = a.wait();
            let vb = b.wait();
            (va[0], vb[0])
        });
        for (i, res) in r.results.iter().enumerate() {
            assert_eq!(*res, (1.0, 2.0), "rank {i}");
        }
        assert_eq!(r.stats.total_msgs(), 2 * (p as u64 - 1));
    }

    #[test]
    fn isendrecv_ring_matches_sendrecv() {
        let p = 5;
        let blocking = run_world(p, |comm| {
            let right = (comm.me() + 1) % comm.size();
            let left = (comm.me() + comm.size() - 1) % comm.size();
            comm.sendrecv(right, left, &[comm.me() as f64])[0]
        });
        let pipelined = run_world(p, |comm| {
            let right = (comm.me() + 1) % comm.size();
            let left = (comm.me() + comm.size() - 1) % comm.size();
            let pending = comm.isendrecv(right, left, vec![comm.me() as f64]);
            assert_eq!(pending.src(), left);
            pending.wait()[0]
        });
        assert_eq!(blocking.results, pipelined.results);
        assert_eq!(blocking.stats, pipelined.stats);
    }

    #[test]
    fn sendrecv_vec_moves_the_buffer() {
        let p = 2;
        let r = run_world(p, |comm| {
            let other = 1 - comm.me();
            let out = vec![comm.me() as f64; 4];
            comm.sendrecv_vec(other, other, out)
        });
        assert_eq!(r.results[0], vec![1.0; 4]);
        assert_eq!(r.results[1], vec![0.0; 4]);
        assert_eq!(r.stats.total_elems(), 8);
    }

    #[test]
    fn bcast_algo_all_algorithms_agree_on_data_and_volume() {
        for algo in [BcastAlgo::Linear, BcastAlgo::Binomial, BcastAlgo::Ring] {
            for p in [2usize, 3, 5, 8] {
                for root in [0, p / 2, p - 1] {
                    let r = run_world(p, move |comm| {
                        let mut buf = if comm.me() == root {
                            (0..10).map(|i| i as f64 * 0.5).collect()
                        } else {
                            vec![0.0; 10]
                        };
                        comm.bcast_algo(root, &mut buf, algo);
                        buf
                    });
                    let expect: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
                    for (i, res) in r.results.iter().enumerate() {
                        assert_eq!(res, &expect, "{algo:?} p={p} root={root} rank={i}");
                    }
                    // Every algorithm moves exactly (p−1)·len elements.
                    assert_eq!(
                        r.stats.total_elems(),
                        10 * (p as u64 - 1),
                        "{algo:?} p={p} root={root}"
                    );
                }
            }
        }
    }

    #[test]
    fn bcast_algo_makespans_order_as_the_alpha_beta_model_predicts() {
        // Large payload, 8 members: linear is (n−1) serialized full-
        // payload hops; the tree cuts that to ⌈log₂ n⌉ dependent hops;
        // the pipelined ring approaches a single payload time. The
        // Lamport makespan must reproduce this ordering exactly.
        // Payload large enough that β·v/S dominates α, else the ring's
        // extra message count costs more latency than it saves.
        let p = 8usize;
        let v = 1usize << 18;
        let cfg = MachineConfig::default();
        let run = move |algo: BcastAlgo| {
            Machine::run::<f64, _, _>(p, cfg, move |rank| {
                let comm = Communicator::world(rank);
                let mut buf = vec![1.0; v];
                comm.bcast_algo(0, &mut buf, algo);
            })
            .makespan
        };
        let linear = run(BcastAlgo::Linear);
        let tree = run(BcastAlgo::Binomial);
        let ring = run(BcastAlgo::Ring);
        let hop = cfg.cost.alpha + cfg.cost.beta * v as f64;
        assert!(
            (linear - 7.0 * hop).abs() < 1e-12,
            "linear {linear} vs {}",
            7.0 * hop
        );
        // Binomial: depth 3 for p = 8 (root's serialized sends add < 1 hop).
        assert!(tree >= 2.99 * hop && tree <= 4.0 * hop, "tree {tree}");
        // Ring with S = 8 segments: (n+S−2)·(α+β·v/8) ≈ 1.75·β·v.
        let seg_hop = cfg.cost.alpha + cfg.cost.beta * (v as f64 / 8.0);
        assert!(
            (ring - 14.0 * seg_hop).abs() < 1e-12,
            "ring {ring} vs {}",
            14.0 * seg_hop
        );
        assert!(ring < tree && tree < linear, "{ring} < {tree} < {linear}");
    }

    #[test]
    fn even_counts_splits() {
        assert_eq!(even_counts(10, 3), vec![4, 3, 3]);
        assert_eq!(even_counts(3, 5), vec![1, 1, 1, 0, 0]);
    }
}

//! Per-rank memory accounting with capacity enforcement.
//!
//! The distributed algorithm's memory claim (Eq. 11: `g_D ≤ M_D`) is
//! only meaningful if the implementation actually respects it. Every
//! buffer a rank allocates is *leased* from its [`MemoryTracker`]; the
//! lease is RAII — dropping it returns the capacity — and leasing past
//! the capacity is an error the run surfaces. The tracker also records
//! the **peak** concurrent usage, which the E6 experiment compares
//! against Eq. 11.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Exceeding a rank's memory capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryError {
    /// Rank that over-allocated.
    pub rank: usize,
    /// Elements requested by the failing lease.
    pub requested: u64,
    /// Elements already live.
    pub live: u64,
    /// The rank's capacity.
    pub capacity: u64,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} out of memory: {} live + {} requested > capacity {}",
            self.rank, self.live, self.requested, self.capacity
        )
    }
}

impl std::error::Error for MemoryError {}

#[derive(Debug)]
struct Inner {
    rank: usize,
    capacity: u64, // u64::MAX = unlimited
    live: AtomicU64,
    peak: AtomicU64,
}

/// Tracks one rank's live and peak element allocations against an
/// optional capacity. Clone-cheap (`Arc` inside); leases may outlive
/// the scope that created the tracker handle.
#[derive(Clone, Debug)]
pub struct MemoryTracker {
    inner: Arc<Inner>,
}

impl MemoryTracker {
    /// A tracker for `rank` with `capacity` elements (`None` =
    /// unlimited).
    pub fn new(rank: usize, capacity: Option<u64>) -> Self {
        MemoryTracker {
            inner: Arc::new(Inner {
                rank,
                capacity: capacity.unwrap_or(u64::MAX),
                live: AtomicU64::new(0),
                peak: AtomicU64::new(0),
            }),
        }
    }

    /// Lease `elems` elements. Fails if the lease would exceed capacity.
    pub fn lease(&self, elems: u64) -> Result<MemLease, MemoryError> {
        let prev = self.inner.live.fetch_add(elems, Ordering::Relaxed);
        let now = prev + elems;
        if now > self.inner.capacity {
            self.inner.live.fetch_sub(elems, Ordering::Relaxed);
            return Err(MemoryError {
                rank: self.inner.rank,
                requested: elems,
                live: prev,
                capacity: self.inner.capacity,
            });
        }
        self.inner.peak.fetch_max(now, Ordering::Relaxed);
        Ok(MemLease {
            tracker: self.clone(),
            elems,
        })
    }

    /// Lease that panics on capacity violation — for call sites where an
    /// over-allocation is a *bug in the plan*, not a recoverable
    /// condition (the machine surfaces the panic with the rank id).
    pub fn lease_or_panic(&self, elems: u64) -> MemLease {
        match self.lease(elems) {
            Ok(l) => l,
            Err(e) => panic!("{e}"),
        }
    }

    /// Currently live elements.
    pub fn live(&self) -> u64 {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// Peak concurrent live elements over the tracker's lifetime.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// The capacity (u64::MAX if unlimited).
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }
}

/// An RAII memory lease; returns its elements to the tracker on drop.
#[derive(Debug)]
pub struct MemLease {
    tracker: MemoryTracker,
    elems: u64,
}

impl MemLease {
    /// Size of this lease in elements.
    pub fn elems(&self) -> u64 {
        self.elems
    }

    /// Grow or shrink the lease in place (e.g. a reused buffer that
    /// changes size between tile steps). Fails — leaving the lease
    /// unchanged — if growth would exceed capacity.
    pub fn resize(&mut self, new_elems: u64) -> Result<(), MemoryError> {
        if new_elems > self.elems {
            let grow = new_elems - self.elems;
            // Delegate the capacity check to a temporary lease, then
            // absorb it.
            let tmp = self.tracker.lease(grow)?;
            std::mem::forget(tmp);
        } else {
            self.tracker
                .inner
                .live
                .fetch_sub(self.elems - new_elems, Ordering::Relaxed);
        }
        self.elems = new_elems;
        Ok(())
    }
}

impl Drop for MemLease {
    fn drop(&mut self) {
        self.tracker
            .inner
            .live
            .fetch_sub(self.elems, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_and_release() {
        let t = MemoryTracker::new(0, Some(100));
        let a = t.lease(60).unwrap();
        assert_eq!(t.live(), 60);
        let b = t.lease(40).unwrap();
        assert_eq!(t.live(), 100);
        drop(a);
        assert_eq!(t.live(), 40);
        drop(b);
        assert_eq!(t.live(), 0);
        assert_eq!(t.peak(), 100);
    }

    #[test]
    fn over_capacity_fails_without_leaking() {
        let t = MemoryTracker::new(3, Some(100));
        let _a = t.lease(80).unwrap();
        let err = t.lease(30).unwrap_err();
        assert_eq!(err.rank, 3);
        assert_eq!(err.live, 80);
        assert_eq!(err.requested, 30);
        // Failed lease must not consume capacity.
        assert_eq!(t.live(), 80);
        let _ok = t.lease(20).unwrap();
    }

    #[test]
    fn unlimited_tracker() {
        let t = MemoryTracker::new(0, None);
        let _a = t.lease(u64::MAX / 2).unwrap();
        assert!(t.lease(u64::MAX / 2).is_ok());
    }

    #[test]
    fn resize_tracks_peak() {
        let t = MemoryTracker::new(0, Some(100));
        let mut l = t.lease(10).unwrap();
        l.resize(90).unwrap();
        assert_eq!(t.live(), 90);
        assert!(l.resize(110).is_err());
        assert_eq!(t.live(), 90, "failed resize must not change live");
        l.resize(5).unwrap();
        assert_eq!(t.live(), 5);
        drop(l);
        assert_eq!(t.live(), 0);
        assert_eq!(t.peak(), 90);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn lease_or_panic_panics() {
        let t = MemoryTracker::new(0, Some(10));
        let _l = t.lease_or_panic(11);
    }
}

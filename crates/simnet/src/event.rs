//! Discrete-event execution backend: virtual time instead of wall time.
//!
//! The thread-per-rank backend caps simulated machine sizes at what the
//! host can schedule comfortably; the paper's Eq. 10/11 claims only get
//! interesting at `P` in the hundreds-to-thousands. This module makes
//! those sizes cheap: the same `P` OS threads are spawned (rank bodies
//! are plain closures and cannot be suspended mid-stack any other way
//! without external coroutine machinery), but an [`EventScheduler`]
//! gates them cooperatively so **exactly one rank body runs at a time**.
//! A rank keeps the floor until it would block in a receive with an
//! empty mailbox; it then parks and the scheduler hands the floor to the
//! runnable rank with the smallest `(virtual clock, rank id)` — a
//! classic discrete-event loop whose "event list" is the set of blocked
//! ranks and whose clock is the Lamport α–β clock every rank already
//! carries (see `Rank::clock`).
//!
//! ## Why observables are backend-independent
//!
//! Nothing observable depends on *which* runnable rank goes first:
//!
//! * **Results** — message matching is by `(source, tag)` with per-pair
//!   FIFO, so the value each receive returns is a pure function of the
//!   program, not of arrival interleaving. (`recv_any` is the one
//!   order-sensitive primitive; no algorithm in the workspace uses it.)
//! * **Counters** — `Stats` records logical sends at the sender, keyed
//!   by nothing temporal.
//! * **Virtual time** — the Lamport clock advances by `α + β·n` per
//!   send and to `max(own, sender's departure)` per matched receive;
//!   both rules are schedule-independent, so per-rank clocks and the
//!   makespan are bitwise identical to the thread backend's.
//! * **Canonical traces** — `RunTrace::canonical` strips wall-clock
//!   fields and sorts spans deterministically.
//!
//! The scheduling *policy* (smallest clock first) therefore only decides
//! wall-time locality, never output; the backend-equivalence suite at
//! the workspace root pins all four properties.
//!
//! ## Deadlock detection
//!
//! The thread backend discovers deadlocks with a receive timeout. Under
//! virtual time the scheduler knows the truth exactly: if no rank is
//! runnable and at least one is blocked, the run is deadlocked *now*.
//! The scheduler poisons itself and releases every blocked rank, each of
//! which raises the same "deadlock trap" panic the timeout path uses —
//! so failure classification upstream is unchanged, and the trap fires
//! in microseconds instead of after a 30 s timeout.

use std::collections::BinaryHeap;
use std::sync::Mutex;

/// Which execution backend a [`crate::Machine`] run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// One OS thread per rank, all runnable concurrently — the default.
    /// Real parallelism (kernels and ranks overlap on the host's cores)
    /// but machine sizes are bounded by what the OS schedules well.
    #[default]
    Thread,
    /// Discrete-event: the same threads gated to one-at-a-time by an
    /// [`EventScheduler`]. No rank-level host parallelism, but `P` in
    /// the thousands simulates in seconds and all algorithmic
    /// observables (results, counters, Lamport clocks, canonical
    /// traces) are bitwise identical to [`Backend::Thread`].
    Event,
}

impl Backend {
    /// Parse a `DISTCONV_BACKEND` value.
    pub fn parse(v: &str) -> Result<Backend, String> {
        match v {
            "thread" => Ok(Backend::Thread),
            "event" => Ok(Backend::Event),
            other => Err(format!(
                "unrecognized backend {other:?} (expected \"thread\" or \"event\")"
            )),
        }
    }

    /// Backend selected by the `DISTCONV_BACKEND` environment variable
    /// (`thread` | `event`); [`Backend::Thread`] when unset. Panics on
    /// an unrecognized value — a typo must not silently fall back.
    pub fn from_env() -> Backend {
        match std::env::var("DISTCONV_BACKEND") {
            Ok(v) => Backend::parse(&v).unwrap_or_else(|e| panic!("DISTCONV_BACKEND: {e}")),
            Err(_) => Backend::Thread,
        }
    }
}

/// How compute sections ([`crate::Rank::time_compute`]) charge the
/// virtual clock. Independent of the backend choice: the default keeps
/// compute free on the clock (communication-only makespans, exactly the
/// paper's cost model and bitwise identical across backends); the other
/// variants let benches model compute/communication ratios.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ComputeModel {
    /// Compute costs nothing in virtual time (the default). Makespans
    /// are pure α–β communication time — deterministic and
    /// backend-independent.
    #[default]
    Off,
    /// Charge the *measured* wall time of each compute section, scaled:
    /// `virtual seconds = wall seconds × scale`. Host-dependent, so
    /// makespans stop being deterministic — a benching knob, never for
    /// goldens.
    Measured {
        /// Wall-to-virtual scale factor (1.0 = real time).
        scale: f64,
    },
    /// Charge a fixed number of virtual seconds per compute section —
    /// deterministic sampled compute for what-if studies.
    Fixed {
        /// Virtual seconds per `time_compute` call.
        seconds: f64,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Runnable, waiting in the ready heap for the floor.
    Ready,
    /// Holds the floor (at most one rank at a time, pre-poison).
    Running,
    /// Parked in a receive with an empty mailbox; a message must arrive
    /// before this rank can be scheduled again.
    Blocked,
    /// Rank body returned (or panicked and was caught).
    Done,
}

/// The scheduler told a blocked rank that the run is deadlocked: no
/// rank is runnable and no message can ever arrive.
pub(crate) struct Poisoned;

struct SchedState {
    status: Vec<Status>,
    /// Virtual clock each rank carried when it last blocked (scheduling
    /// key only — the authoritative clock lives in the `Rank`).
    clock: Vec<f64>,
    /// Park handles, registered by each rank thread at startup.
    threads: Vec<Option<std::thread::Thread>>,
    /// Min-heap of `(clock bits, rank)` over Ready ranks. Entries are
    /// lazily invalidated: pop checks the live status. Clocks are
    /// non-negative, so `f64::to_bits` orders like the float.
    ready: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    /// The rank currently holding the floor.
    current: Option<usize>,
    /// Rank threads that have registered their park handle.
    registered: usize,
    /// Deadlock declared: every blocked rank must trap.
    poisoned: bool,
}

/// Cooperative one-runner-at-a-time scheduler for [`Backend::Event`].
/// Created per machine run; every `Rank` of the run holds an `Arc`.
pub(crate) struct EventScheduler {
    state: Mutex<SchedState>,
}

impl EventScheduler {
    pub(crate) fn new(p: usize) -> Self {
        EventScheduler {
            state: Mutex::new(SchedState {
                status: vec![Status::Ready; p],
                clock: vec![0.0; p],
                threads: vec![None; p],
                ready: (0..p).map(|id| std::cmp::Reverse((0, id))).collect(),
                current: None,
                registered: 0,
                poisoned: false,
            }),
        }
    }

    /// Hand the floor to the Ready rank with the smallest
    /// `(clock, id)`, or declare deadlock if none exists but blocked
    /// ranks do. Caller holds the lock.
    fn dispatch(st: &mut SchedState) {
        st.current = None;
        while let Some(std::cmp::Reverse((_, id))) = st.ready.pop() {
            if st.status[id] != Status::Ready {
                continue; // stale entry
            }
            st.status[id] = Status::Running;
            st.current = Some(id);
            if let Some(t) = &st.threads[id] {
                t.unpark();
            }
            return;
        }
        if st.status.contains(&Status::Blocked) {
            // No runnable rank, at least one waiting on a message that
            // can never come: the run is deadlocked. Release everyone so
            // each blocked rank raises its own deadlock trap.
            st.poisoned = true;
            for (id, t) in st.threads.iter().enumerate() {
                if st.status[id] != Status::Done {
                    if let Some(t) = t {
                        t.unpark();
                    }
                }
            }
        }
        // Else: every rank is Done and the run is over.
    }

    /// Park until this rank holds the floor (or the run is poisoned —
    /// returned as `Err` so receive paths raise the deadlock trap).
    fn wait_floor(&self, id: usize) -> Result<(), Poisoned> {
        loop {
            {
                let st = self.state.lock().unwrap();
                if st.current == Some(id) {
                    return Ok(());
                }
                if st.poisoned {
                    return Err(Poisoned);
                }
            }
            std::thread::park();
        }
    }

    /// Called once by each rank thread before its body runs: register
    /// the park handle and wait for the first dispatch. The last
    /// registrant starts the event loop.
    pub(crate) fn start(&self, id: usize) {
        {
            let mut st = self.state.lock().unwrap();
            st.threads[id] = Some(std::thread::current());
            st.registered += 1;
            if st.registered == st.threads.len() {
                Self::dispatch(&mut st);
            }
        }
        // A poisoned result is impossible before the first dispatch;
        // tolerate it anyway by letting the body run into its first
        // receive, which will trap.
        let _ = self.wait_floor(id);
    }

    /// The running rank found its mailbox empty: give up the floor and
    /// park until a message for it arrives *and* the scheduler hands
    /// the floor back. `clock` is the rank's virtual time at the block,
    /// the scheduling key for its eventual resumption.
    pub(crate) fn yield_blocked(&self, id: usize, clock: f64) -> Result<(), Poisoned> {
        {
            let mut st = self.state.lock().unwrap();
            if st.poisoned {
                return Err(Poisoned);
            }
            st.status[id] = Status::Blocked;
            st.clock[id] = clock;
            if st.current == Some(id) {
                Self::dispatch(&mut st);
            }
        }
        self.wait_floor(id)
    }

    /// A message was just enqueued for `dst`: if it is blocked, make it
    /// runnable (it gets the floor when its clock comes up).
    pub(crate) fn notify(&self, dst: usize) {
        let mut st = self.state.lock().unwrap();
        if st.status[dst] == Status::Blocked {
            st.status[dst] = Status::Ready;
            let key = st.clock[dst].to_bits();
            st.ready.push(std::cmp::Reverse((key, dst)));
        }
    }

    /// The rank body returned (or its panic was caught): release the
    /// floor permanently.
    pub(crate) fn retire(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        st.status[id] = Status::Done;
        if st.current == Some(id) {
            Self::dispatch(&mut st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parse_roundtrip() {
        assert_eq!(Backend::parse("thread"), Ok(Backend::Thread));
        assert_eq!(Backend::parse("event"), Ok(Backend::Event));
        assert!(Backend::parse("fiber").is_err());
        assert_eq!(Backend::default(), Backend::Thread);
    }

    #[test]
    fn compute_model_default_is_off() {
        assert_eq!(ComputeModel::default(), ComputeModel::Off);
    }

    #[test]
    fn clock_bits_order_like_floats() {
        // The ready heap keys on to_bits(); verify the monotonicity
        // assumption for the non-negative clocks we feed it.
        let xs = [0.0f64, 1e-9, 1e-6, 0.5, 1.0, 1e6];
        for w in xs.windows(2) {
            assert!(w[0].to_bits() < w[1].to_bits(), "{} vs {}", w[0], w[1]);
        }
    }
}

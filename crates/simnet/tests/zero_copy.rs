//! The owned-buffer hot path moves payloads end-to-end: a `Vec` handed
//! to `send_vec`/`sendrecv_vec` arrives at the receiver as the *same
//! allocation* (pointer identity), and the owned `sendrecv_vec` makes
//! strictly fewer large allocations than the borrowing `sendrecv`
//! (which must copy the caller's slice onto the wire).
//!
//! This file is its own test binary, so it can install a counting
//! global allocator without affecting other suites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use distconv_simnet::{CartGrid, Machine, MachineConfig};

/// Counts allocations of at least [`BIG`] bytes (the payload class;
/// harness noise — threads, mailboxes, stats — stays far below it).
struct CountingAlloc;

const BIG: usize = 1 << 20;
static BIG_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= BIG {
            BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn send_vec_passes_the_same_allocation() {
    // The sender stamps the buffer's own address into element 0; the
    // receiver checks the buffer it got lives at that address.
    Machine::run::<u64, _, _>(2, MachineConfig::default(), |rank| {
        if rank.id() == 0 {
            let mut v = vec![0u64; 1000];
            v[0] = v.as_ptr() as u64;
            rank.send_vec(1, 7, v);
        } else {
            let got = rank.recv(0, 7);
            assert_eq!(got.len(), 1000);
            assert_eq!(
                got[0],
                got.as_ptr() as u64,
                "payload must arrive in the sender's allocation (zero-copy)"
            );
        }
    });
}

#[test]
fn sendrecv_vec_passes_the_same_allocation() {
    Machine::run::<u64, _, _>(2, MachineConfig::default(), |rank| {
        let grid = CartGrid::new(vec![2]);
        let world: Vec<usize> = (0..2).collect();
        let comm = grid.sub_comm(rank, rank.id(), &world, &[0]);
        let me = rank.id();
        let mut v = vec![me as u64; 1000];
        v[0] = v.as_ptr() as u64;
        let got = comm.sendrecv_vec(1 - me, 1 - me, v);
        assert_eq!(got[1], (1 - me) as u64, "wrong payload");
        assert_eq!(
            got[0],
            got.as_ptr() as u64,
            "sendrecv_vec must move the buffer end-to-end"
        );
    });
}

/// Run a 2-rank exchange of an 8 MiB payload per rank and return how
/// many payload-sized allocations it made.
fn big_allocs_for(owned: bool) -> u64 {
    const N: usize = 1 << 20; // u64 elements → 8 MiB per payload
    let before = BIG_ALLOCS.load(Ordering::Relaxed);
    Machine::run::<u64, _, _>(2, MachineConfig::default(), move |rank| {
        let grid = CartGrid::new(vec![2]);
        let world: Vec<usize> = (0..2).collect();
        let comm = grid.sub_comm(rank, rank.id(), &world, &[0]);
        let me = rank.id();
        let v = vec![me as u64; N];
        let got = if owned {
            comm.sendrecv_vec(1 - me, 1 - me, v)
        } else {
            comm.sendrecv(1 - me, 1 - me, &v)
        };
        assert_eq!(got.len(), N);
        assert_eq!(got[0], (1 - me) as u64);
    });
    BIG_ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn owned_sendrecv_skips_the_wire_copy() {
    // Run both variants inside one test so the global counter isn't
    // shared with a concurrently running test.
    let owned = big_allocs_for(true);
    let borrowed = big_allocs_for(false);
    // Owned: exactly one big allocation per rank — the payload itself.
    assert_eq!(owned, 2, "owned path must not copy the payload");
    // Borrowed: payload + the to_vec wire copy per rank.
    assert_eq!(borrowed, 4, "borrowed path copies the caller's slice");
}

//! Overlap equivalence proptests: for random shapes, grids, seeds and
//! (reliable) fault plans, the double-buffered **overlapped** pipelines
//! must produce bit-identical outputs and identical algorithmic traffic
//! counters to the **blocking** paths — for all four distmm algorithms
//! and the distributed CNN executor, including under crash/recovery.
//!
//! Runs on the in-tree `distconv_par::proptest_mini` harness: a failing
//! case prints its seed, and `DISTCONV_PROPTEST_SEED=<seed>` replays
//! exactly that case.

use distconv_cost::{Conv2dProblem, MachineSpec, Planner};
use distconv_distmm::{
    cannon_rank_body_mode, dns3d_rank_body_mode, s25d_rank_body_mode, summa_rank_body_mode,
    MatmulDims,
};
use distconv_par::proptest_mini::{check, Config, Gen};
use distconv_par::CommMode;
use distconv_simnet::{FaultPlan, Machine, MachineConfig, Rank, RunReport};
use distconv_tensor::Matrix;

// Each case runs two full machines per algorithm; keep sizes small.
const CASES: u32 = 30;

/// A reliable (or no-op) link-fault plan — the class under which the
/// transport guarantees bit-identical delivery, so both comm modes must
/// also agree under it.
fn gen_plan(g: &mut Gen) -> FaultPlan {
    if g.usize_in(0, 3) == 0 {
        return FaultPlan::default();
    }
    let mut plan = FaultPlan::reliable(g.u64());
    if g.bool() {
        plan = plan.with_drops(g.f64_unit() * 0.3);
    }
    if g.bool() {
        plan = plan.with_dups(g.f64_unit() * 0.3);
    }
    if g.bool() {
        plan = plan.with_reorders(g.f64_unit() * 0.3);
    }
    plan
}

/// Run `body` in both comm modes under `plan`; results must be bitwise
/// identical and the algorithmic (non-fault) counters exactly equal.
fn assert_modes_agree<F>(p: usize, plan: FaultPlan, body: F)
where
    F: Fn(&Rank<f64>, CommMode) -> Matrix<f64> + Send + Sync + Copy,
{
    let cfg = MachineConfig {
        faults: plan,
        ..MachineConfig::default()
    };
    let run = |mode: CommMode| -> RunReport<Matrix<f64>> {
        Machine::run::<f64, _, _>(p, cfg, move |rank| body(rank, mode))
    };
    let blocking = run(CommMode::Blocking);
    let overlapped = run(CommMode::Overlapped);
    for (r, (b, o)) in blocking
        .results
        .iter()
        .zip(overlapped.results.iter())
        .enumerate()
    {
        let bb: Vec<u64> = b.as_slice().iter().map(|x| x.to_bits()).collect();
        let ob: Vec<u64> = o.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(bb, ob, "rank {r} bitwise mismatch under {plan:?}");
    }
    assert_eq!(
        blocking.stats.total_msgs(),
        overlapped.stats.total_msgs(),
        "message count must not change with comm mode under {plan:?}"
    );
    assert_eq!(
        blocking.stats.per_rank_msgs, overlapped.stats.per_rank_msgs,
        "per-rank message counts must match under {plan:?}"
    );
    assert_eq!(
        blocking.stats.per_rank_elems, overlapped.stats.per_rank_elems,
        "per-rank volumes must match under {plan:?}"
    );
}

#[test]
fn cannon_overlap_equivalent() {
    check(
        "cannon_overlap_equivalent",
        Config::with_cases(CASES),
        |g| {
            let q = g.usize_in(1, 3);
            let d = MatmulDims::new(g.usize_in(1, 16), g.usize_in(1, 16), g.usize_in(1, 16));
            let plan = gen_plan(g);
            assert_modes_agree(q * q, plan, move |rank, mode| {
                cannon_rank_body_mode(rank, &d, q, mode)
            });
        },
    );
}

#[test]
fn summa_overlap_equivalent() {
    check("summa_overlap_equivalent", Config::with_cases(CASES), |g| {
        let pr = g.usize_in(1, 3);
        let pc = g.usize_in(1, 3);
        let d = MatmulDims::new(g.usize_in(1, 16), g.usize_in(1, 16), g.usize_in(1, 16));
        let plan = gen_plan(g);
        assert_modes_agree(pr * pc, plan, move |rank, mode| {
            summa_rank_body_mode(rank, &d, pr, pc, mode)
        });
    });
}

#[test]
fn s25d_overlap_equivalent() {
    check("s25d_overlap_equivalent", Config::with_cases(CASES), |g| {
        let p1 = g.usize_in(1, 2);
        let c = g.usize_in(1, 3);
        let d = MatmulDims::new(g.usize_in(1, 12), g.usize_in(2, 12), g.usize_in(1, 12));
        let plan = gen_plan(g);
        assert_modes_agree(c * p1 * p1, plan, move |rank, mode| {
            s25d_rank_body_mode(rank, &d, p1, c, mode)
        });
    });
}

#[test]
fn dns3d_overlap_equivalent() {
    check("dns3d_overlap_equivalent", Config::with_cases(CASES), |g| {
        let p1 = g.usize_in(1, 2);
        let d = MatmulDims::new(g.usize_in(1, 12), g.usize_in(1, 12), g.usize_in(1, 12));
        let plan = gen_plan(g);
        assert_modes_agree(p1 * p1 * p1, plan, move |rank, mode| {
            dns3d_rank_body_mode(rank, &d, p1, mode)
        });
    });
}

/// Plan a random small CNN layer; `None` if the planner rejects it.
fn gen_cnn_plan(g: &mut Gen) -> Option<(distconv_cost::DistPlan, u64)> {
    let nb = [1usize, 2, 4][g.usize_in(0, 2)];
    let nk = [2usize, 4, 8][g.usize_in(0, 2)];
    let nc = [2usize, 4, 8][g.usize_in(0, 2)];
    let hw = [4usize, 6, 8][g.usize_in(0, 2)];
    let rs = [1usize, 3][g.usize_in(0, 1)];
    let procs = [2usize, 4, 8][g.usize_in(0, 2)];
    let p = Conv2dProblem::square(nb, nk, nc, hw, rs);
    let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
        .plan()
        .ok()?;
    Some((plan, g.u64()))
}

#[test]
fn gvm_executor_overlap_equivalent() {
    use distconv_core::DistConv;
    check(
        "gvm_executor_overlap_equivalent",
        Config::with_cases(CASES),
        |g| {
            let Some((plan, seed)) = gen_cnn_plan(g) else {
                return;
            };
            let fault_plan = gen_plan(g);
            let cfg = MachineConfig {
                faults: fault_plan,
                ..MachineConfig::default()
            };
            let run = |mode: CommMode| {
                DistConv::<f64>::new(plan)
                    .with_config(cfg)
                    .with_comm_mode(mode)
                    .run_with_outputs(seed)
                    .expect("run failed")
            };
            let (br, bo) = run(CommMode::Blocking);
            let (or, oo) = run(CommMode::Overlapped);
            for (rank, (b, o)) in bo.iter().zip(oo.iter()).enumerate() {
                match (&b.slice, &o.slice) {
                    (None, None) => {}
                    (Some(bs), Some(os)) => {
                        let bb: Vec<u64> = bs.as_slice().iter().map(|x| x.to_bits()).collect();
                        let ob: Vec<u64> = os.as_slice().iter().map(|x| x.to_bits()).collect();
                        assert_eq!(bb, ob, "rank {rank} Out slice bitwise mismatch");
                    }
                    _ => panic!("rank {rank}: output presence differs between modes"),
                }
            }
            assert_eq!(
                br.stats.per_rank_msgs, or.stats.per_rank_msgs,
                "per-rank message counts must match"
            );
            assert_eq!(
                br.stats.per_rank_elems, or.stats.per_rank_elems,
                "per-rank volumes must match"
            );
        },
    );
}

#[test]
fn gvm_executor_overlap_equivalent_under_crash_recovery() {
    use distconv_core::DistConv;
    check(
        "gvm_executor_overlap_equivalent_under_crash_recovery",
        Config::with_cases(10),
        |g| {
            let Some((plan, seed)) = gen_cnn_plan(g) else {
                return;
            };
            let procs = plan.grid.total();
            // Crash one rank at a random early send; recovery restarts
            // with rank faults cleared, so both modes converge to the
            // same fault-free final run.
            let faults =
                FaultPlan::reliable(g.u64()).with_crash(g.usize_in(0, procs - 1), g.u64() % 5 + 1);
            let cfg = MachineConfig {
                faults,
                // Survivors of the crashed attempt sit in the deadlock
                // trap until this expires; keep each retry cheap.
                recv_timeout: std::time::Duration::from_millis(500),
                ..MachineConfig::default()
            };
            let run = |mode: CommMode| {
                DistConv::<f64>::new(plan)
                    .with_config(cfg)
                    .with_comm_mode(mode)
                    .run_recovering(seed)
                    .expect("recovery failed")
            };
            let blocking = run(CommMode::Blocking);
            let overlapped = run(CommMode::Overlapped);
            assert!(blocking.verified && overlapped.verified);
            assert_eq!(
                blocking.stats.per_rank_msgs, overlapped.stats.per_rank_msgs,
                "per-rank message counts must match after recovery"
            );
            assert_eq!(
                blocking.stats.per_rank_elems, overlapped.stats.per_rank_elems,
                "per-rank volumes must match after recovery"
            );
        },
    );
}

//! Property-based chaos tests: every collective, run under a randomized
//! fault plan in reliable-delivery mode, must produce **bit-identical**
//! results and identical algorithmic traffic counters to the fault-free
//! run — drops, duplicates, delays and reorders are absorbed entirely by
//! the transport layer and surface only in the separate
//! [`FaultTraffic`](distconv_simnet::FaultTraffic) counters.
//!
//! Runs on the in-tree `distconv_par::proptest_mini` harness: a failing
//! case prints its seed, and `DISTCONV_PROPTEST_SEED=<seed>` replays
//! exactly that case.

use distconv_par::proptest_mini::{check, Config, Gen};
use distconv_simnet::{Communicator, FaultPlan, Machine, MachineConfig, Rank};

// Each case spawns two machines (clean + faulty); keep ranks moderate.
const CASES: u32 = 100;

/// A randomized link-fault plan that is safe to run collectives under:
/// either a true no-op (exercising the zero-overhead fast path) or a
/// reliable-mode plan with random drop/dup/delay/reorder probabilities.
/// Never crashes or unreliable drops — those are failure tests, not
/// equivalence tests.
fn gen_plan(g: &mut Gen) -> FaultPlan {
    if g.usize_in(0, 7) == 0 {
        return FaultPlan::default();
    }
    let mut plan = FaultPlan::reliable(g.u64());
    if g.bool() {
        plan = plan.with_drops(g.f64_unit() * 0.4);
    }
    if g.bool() {
        plan = plan.with_dups(g.f64_unit() * 0.4);
    }
    if g.bool() {
        plan = plan.with_delays(g.f64_unit() * 0.4, g.f64_unit() * 8.0);
    }
    if g.bool() {
        plan = plan.with_reorders(g.f64_unit() * 0.4);
    }
    plan
}

/// Run `body` fault-free and under `plan`; the results and the
/// algorithmic (non-fault) counters must match exactly, and the fault
/// counters must obey the plan: retransmits happen iff drops do.
fn assert_fault_transparent<R, F>(p: usize, plan: FaultPlan, body: F)
where
    R: PartialEq + std::fmt::Debug + Send,
    F: Fn(&Rank<f64>) -> R + Send + Sync + Copy,
{
    let clean = Machine::run::<f64, _, _>(p, MachineConfig::default(), body);
    let cfg = MachineConfig {
        faults: plan,
        ..MachineConfig::default()
    };
    let faulty = Machine::run::<f64, _, _>(p, cfg, body);

    assert_eq!(
        clean.results, faulty.results,
        "results must be bit-identical under {plan:?}"
    );
    assert_eq!(
        clean.stats.total_msgs(),
        faulty.stats.total_msgs(),
        "algorithmic message count must be fault-independent under {plan:?}"
    );
    assert_eq!(
        clean.stats.total_elems(),
        faulty.stats.total_elems(),
        "algorithmic volume must be fault-independent under {plan:?}"
    );
    assert_eq!(
        clean.stats.per_rank_elems, faulty.stats.per_rank_elems,
        "per-rank volumes must be fault-independent under {plan:?}"
    );

    assert!(
        clean.stats.fault.is_zero(),
        "fault-free run leaked overhead"
    );
    let f = &faulty.stats.fault;
    if plan.is_noop() {
        assert!(f.is_zero(), "no-op plan must inject nothing: {f:?}");
    }
    if plan.drop_prob == 0.0 {
        assert_eq!(f.retrans_msgs, 0, "retransmits without drops: {f:?}");
        assert_eq!(f.dropped_msgs, 0, "drops without drop_prob: {f:?}");
    }
    // Every recorded data drop forced a retransmit (ack drops add more).
    assert!(
        f.retrans_msgs >= f.dropped_msgs,
        "dropped data without retransmission: {f:?}"
    );
    if f.retrans_msgs == 0 {
        assert_eq!(f.dropped_msgs, 0, "drops must trigger retransmits: {f:?}");
    }
    if plan.dup_prob == 0.0 {
        assert_eq!(f.dup_msgs, 0, "duplicates without dup_prob: {f:?}");
    }
}

#[test]
fn bcast_is_fault_transparent() {
    check(
        "bcast_is_fault_transparent",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let root = g.usize_in(0, p - 1);
            let len = g.usize_in(1, 40);
            let plan = gen_plan(g);
            assert_fault_transparent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let mut buf = if comm.me() == root {
                    (0..len).map(|i| (i * 3 + 1) as f64).collect()
                } else {
                    vec![0.0; len]
                };
                comm.bcast(root, &mut buf);
                buf
            });
        },
    );
}

#[test]
fn reduce_is_fault_transparent() {
    check(
        "reduce_is_fault_transparent",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let root = g.usize_in(0, p - 1);
            let len = g.usize_in(1, 40);
            let seed = g.u64();
            let plan = gen_plan(g);
            assert_fault_transparent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let mut buf: Vec<f64> = (0..len)
                    .map(|i| ((seed ^ (rank.id() as u64 * 37 + i as u64)) % 64) as f64)
                    .collect();
                comm.reduce(root, &mut buf);
                buf
            });
        },
    );
}

#[test]
fn allreduce_is_fault_transparent() {
    check(
        "allreduce_is_fault_transparent",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let len = g.usize_in(1, 40);
            let seed = g.u64();
            let plan = gen_plan(g);
            assert_fault_transparent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let mut buf: Vec<f64> = (0..len)
                    .map(|i| ((seed ^ (rank.id() as u64 * 31 + i as u64)) % 64) as f64)
                    .collect();
                comm.allreduce(&mut buf);
                buf
            });
        },
    );
}

#[test]
fn allgather_is_fault_transparent() {
    check(
        "allgather_is_fault_transparent",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let len = g.usize_in(1, 20);
            let plan = gen_plan(g);
            assert_fault_transparent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let mine: Vec<f64> = (0..len + comm.me())
                    .map(|i| (comm.me() * 1000 + i) as f64)
                    .collect();
                comm.allgather_varying(&mine)
            });
        },
    );
}

#[test]
fn reduce_scatter_is_fault_transparent() {
    check(
        "reduce_scatter_is_fault_transparent",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let chunk = g.usize_in(1, 9);
            let plan = gen_plan(g);
            assert_fault_transparent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let buf: Vec<f64> = (0..chunk * p).map(|i| (rank.id() + i) as f64).collect();
                let counts = vec![chunk; p];
                comm.reduce_scatter(&buf, &counts)
            });
        },
    );
}

#[test]
fn all_to_all_is_fault_transparent() {
    check(
        "all_to_all_is_fault_transparent",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let len = g.usize_in(0, 7);
            let plan = gen_plan(g);
            assert_fault_transparent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let outgoing: Vec<Vec<f64>> = (0..p)
                    .map(|j| vec![(comm.me() * 100 + j) as f64; len])
                    .collect();
                comm.alltoall(&outgoing)
            });
        },
    );
}

//! Property-based tests for the simulator's collectives: randomized
//! rank counts, roots and payload sizes, always checked against a
//! sequential model — plus exact volume laws. Runs on the in-tree
//! `distconv_par::proptest_mini` harness.

use distconv_par::proptest_mini::{check, Config};
use distconv_simnet::{Communicator, Machine, MachineConfig};

// Each case spawns threads; keep counts moderate.
const CASES: u32 = 24;

#[test]
fn bcast_delivers_and_counts() {
    check(
        "bcast_delivers_and_counts",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(1, 9);
            let root = g.usize_in(0, p - 1);
            let len = g.usize_in(0, 199);
            let report = Machine::run::<f64, _, _>(p, MachineConfig::default(), move |rank| {
                let comm = Communicator::world(rank);
                let mut buf = if comm.me() == root {
                    (0..len).map(|i| i as f64).collect()
                } else {
                    vec![0.0; len]
                };
                comm.bcast(root, &mut buf);
                buf
            });
            let expect: Vec<f64> = (0..len).map(|i| i as f64).collect();
            for r in &report.results {
                assert_eq!(r, &expect);
            }
            assert_eq!(report.stats.total_elems(), (len * (p - 1)) as u64);
            assert_eq!(report.stats.total_msgs(), (p - 1) as u64);
        },
    );
}

#[test]
fn allreduce_equals_sequential_sum() {
    check(
        "allreduce_equals_sequential_sum",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(1, 8);
            let len = g.usize_in(1, 299);
            let seed = g.u64();
            let report = Machine::run::<f64, _, _>(p, MachineConfig::default(), move |rank| {
                let mut buf: Vec<f64> = (0..len)
                    .map(|i| ((seed ^ (rank.id() as u64 * 31 + i as u64)) % 100) as f64)
                    .collect();
                let comm = Communicator::world(rank);
                comm.allreduce(&mut buf);
                buf
            });
            // Sequential model.
            let mut expect = vec![0.0f64; len];
            for r in 0..p {
                for (i, e) in expect.iter_mut().enumerate() {
                    *e += ((seed ^ (r as u64 * 31 + i as u64)) % 100) as f64;
                }
            }
            for res in &report.results {
                assert_eq!(res, &expect);
            }
        },
    );
}

#[test]
fn gather_scatter_inverse() {
    check("gather_scatter_inverse", Config::with_cases(CASES), |g| {
        // scatter(gather(x)) == x for varying chunk sizes.
        let p = g.usize_in(1, 7);
        let root = g.usize_in(0, p - 1);
        let base_len = g.usize_in(1, 19);
        Machine::run::<f64, _, _>(p, MachineConfig::default(), move |rank| {
            let comm = Communicator::world(rank);
            let mine: Vec<f64> = (0..base_len + comm.me())
                .map(|i| (comm.me() * 1000 + i) as f64)
                .collect();
            let gathered = comm.gather(root, &mine);
            let back = if comm.me() == root {
                comm.scatter(root, Some(&gathered.unwrap()))
            } else {
                assert!(gathered.is_none());
                comm.scatter(root, None)
            };
            assert_eq!(back, mine);
        });
    });
}

#[test]
fn reduce_scatter_chunks_sum() {
    check(
        "reduce_scatter_chunks_sum",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(1, 6);
            let chunk = g.usize_in(1, 9);
            let len = chunk * p;
            let report = Machine::run::<f64, _, _>(p, MachineConfig::default(), move |rank| {
                let comm = Communicator::world(rank);
                let buf: Vec<f64> = (0..len).map(|i| (rank.id() + i) as f64).collect();
                let counts = vec![chunk; p];
                comm.reduce_scatter(&buf, &counts)
            });
            // Element j of chunk i is Σ_r (r + i·chunk + j).
            let rank_sum: f64 = (0..p).map(|r| r as f64).sum();
            for (i, res) in report.results.iter().enumerate() {
                for (j, &v) in res.iter().enumerate() {
                    let expect = rank_sum + (p * (i * chunk + j)) as f64;
                    assert_eq!(v, expect, "member {i} elem {j}");
                }
            }
        },
    );
}

#[test]
fn alltoall_is_transpose() {
    check("alltoall_is_transpose", Config::with_cases(CASES), |g| {
        let p = g.usize_in(1, 6);
        let len = g.usize_in(0, 7);
        let report = Machine::run::<u64, _, _>(p, MachineConfig::default(), move |rank| {
            let comm = Communicator::world(rank);
            let outgoing: Vec<Vec<u64>> = (0..p)
                .map(|j| vec![(comm.me() * 100 + j) as u64; len])
                .collect();
            comm.alltoall(&outgoing)
        });
        for (i, res) in report.results.iter().enumerate() {
            for (j, chunk) in res.iter().enumerate() {
                assert_eq!(chunk, &vec![(j * 100 + i) as u64; len]);
            }
        }
    });
}

#[test]
fn concurrent_disjoint_groups_do_not_interfere() {
    // 3 groups of 3 ranks each run different collectives concurrently.
    let report = Machine::run::<f64, _, _>(9, MachineConfig::default(), |rank| {
        let group = rank.id() / 3;
        let members: Vec<usize> = (group * 3..group * 3 + 3).collect();
        let comm = Communicator::new(rank, members, group as u32 + 10);
        match group {
            0 => {
                let mut buf = vec![rank.id() as f64];
                comm.allreduce(&mut buf);
                buf[0]
            }
            1 => {
                let mut buf = if comm.me() == 0 {
                    vec![42.0]
                } else {
                    vec![0.0]
                };
                comm.bcast(0, &mut buf);
                buf[0]
            }
            _ => {
                let gathered = comm.gather(2, &[rank.id() as f64]);
                gathered.map_or(-1.0, |g| g.iter().map(|c| c[0]).sum())
            }
        }
    });
    assert_eq!(report.results[0], 0.0 + 1.0 + 2.0);
    assert_eq!(report.results[4], 42.0);
    assert_eq!(report.results[8], 6.0 + 7.0 + 8.0);
}

#[test]
fn ring_order_independence_of_thread_scheduling() {
    // Volumes and results must be identical across repeated runs even
    // though thread interleavings differ.
    let run = || {
        Machine::run::<f64, _, _>(6, MachineConfig::default(), |rank| {
            let comm = Communicator::world(rank);
            let mine = vec![rank.id() as f64; 64];
            let all = comm.allgather_varying(&mine);
            all.iter().map(|c| c.iter().sum::<f64>()).sum::<f64>()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.stats.total_elems(), b.stats.total_elems());
    assert_eq!(a.stats.per_rank_elems, b.stats.per_rank_elems);
}

//! Property-based backend-equivalence chaos tests: the same collective,
//! under the same randomized fault plan, run on the thread backend and
//! on the discrete-event backend, must be **bitwise indistinguishable**
//! — results, the full [`StatsSnapshot`](distconv_simnet::StatsSnapshot)
//! (algorithmic counters *and* the separate
//! [`FaultTraffic`](distconv_simnet::FaultTraffic) overhead), and the
//! canonical trace digest. Fault decisions are pure functions of
//! `(seed, src, dst, wire, attempt)` and retransmit timing is virtual,
//! so nothing observable may depend on which scheduler ran the ranks.
//!
//! Runs on the in-tree `distconv_par::proptest_mini` harness: a failing
//! case prints its seed, and `DISTCONV_PROPTEST_SEED=<seed>` replays
//! exactly that case.

use distconv_par::proptest_mini::{check, Config, Gen};
use distconv_simnet::{Backend, Communicator, FaultPlan, Machine, MachineConfig, Rank};

// Each case spawns two machines (thread + event); keep ranks moderate.
const CASES: u32 = 60;

/// A randomized reliable-mode fault plan (or occasionally a no-op),
/// including the rank-level faults the link-equivalence suite avoids:
/// a straggler is fine here because both backends must agree on its
/// effect, and skewed delays exercise the virtual-time ARQ backoff.
fn gen_plan(g: &mut Gen) -> FaultPlan {
    if g.usize_in(0, 7) == 0 {
        return FaultPlan::default();
    }
    let mut plan = FaultPlan::reliable(g.u64());
    if g.bool() {
        plan = plan.with_drops(g.f64_unit() * 0.4);
    }
    if g.bool() {
        plan = plan.with_dups(g.f64_unit() * 0.4);
    }
    if g.bool() {
        plan = plan.with_delays(g.f64_unit() * 0.4, g.f64_unit() * 8.0);
    }
    if g.bool() {
        plan = plan.with_reorders(g.f64_unit() * 0.4);
    }
    plan
}

/// Run `body` on both backends under `plan`; everything observable must
/// be bitwise identical.
fn assert_backend_equivalent<R, F>(p: usize, plan: FaultPlan, body: F)
where
    R: PartialEq + std::fmt::Debug + Send,
    F: Fn(&Rank<f64>) -> R + Send + Sync + Copy,
{
    let cfg = |backend| MachineConfig {
        faults: plan,
        backend,
        ..MachineConfig::default()
    };
    let thread = Machine::run::<f64, _, _>(p, cfg(Backend::Thread), body);
    let event = Machine::run::<f64, _, _>(p, cfg(Backend::Event), body);

    assert_eq!(
        thread.results, event.results,
        "results must be backend-independent under {plan:?}"
    );
    // The whole snapshot: algorithmic counters AND fault overhead
    // (retransmits, acks, dup suppressions, injected delay).
    assert_eq!(
        thread.stats, event.stats,
        "counters must be backend-independent under {plan:?}"
    );
    assert_eq!(
        thread.trace.digest(),
        event.trace.digest(),
        "canonical trace must be backend-independent under {plan:?}"
    );
}

#[test]
fn bcast_is_backend_equivalent_under_faults() {
    check(
        "bcast_is_backend_equivalent_under_faults",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let root = g.usize_in(0, p - 1);
            let len = g.usize_in(1, 40);
            let plan = gen_plan(g);
            assert_backend_equivalent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let mut buf = if comm.me() == root {
                    (0..len).map(|i| (i * 3 + 1) as f64).collect()
                } else {
                    vec![0.0; len]
                };
                comm.bcast(root, &mut buf);
                buf
            });
        },
    );
}

#[test]
fn allreduce_is_backend_equivalent_under_faults() {
    check(
        "allreduce_is_backend_equivalent_under_faults",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let len = g.usize_in(1, 40);
            let seed = g.u64();
            let plan = gen_plan(g);
            assert_backend_equivalent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let mut buf: Vec<f64> = (0..len)
                    .map(|i| ((seed ^ (rank.id() as u64 * 31 + i as u64)) % 64) as f64)
                    .collect();
                comm.allreduce(&mut buf);
                buf
            });
        },
    );
}

#[test]
fn reduce_scatter_is_backend_equivalent_under_faults() {
    check(
        "reduce_scatter_is_backend_equivalent_under_faults",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let chunk = g.usize_in(1, 9);
            let plan = gen_plan(g);
            assert_backend_equivalent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let buf: Vec<f64> = (0..chunk * p).map(|i| (rank.id() + i) as f64).collect();
                let counts = vec![chunk; p];
                comm.reduce_scatter(&buf, &counts)
            });
        },
    );
}

#[test]
fn all_to_all_is_backend_equivalent_under_faults() {
    check(
        "all_to_all_is_backend_equivalent_under_faults",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let len = g.usize_in(0, 7);
            let plan = gen_plan(g);
            assert_backend_equivalent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let outgoing: Vec<Vec<f64>> = (0..p)
                    .map(|j| vec![(comm.me() * 100 + j) as f64; len])
                    .collect();
                comm.alltoall(&outgoing)
            });
        },
    );
}

#[test]
fn straggler_skew_is_backend_equivalent() {
    // A straggler only stretches virtual time; both backends must agree
    // on results, counters, and the canonical schedule.
    check(
        "straggler_skew_is_backend_equivalent",
        Config::with_cases(CASES),
        |g| {
            let p = g.usize_in(2, 5);
            let slow = g.usize_in(0, p - 1);
            let factor = 1.0 + g.f64_unit() * 9.0;
            let len = g.usize_in(1, 20);
            let plan = gen_plan(g).with_straggler(slow, factor);
            assert_backend_equivalent(p, plan, move |rank| {
                let comm = Communicator::world(rank);
                let mut buf: Vec<f64> = (0..len).map(|i| (rank.id() * 17 + i) as f64).collect();
                comm.allreduce(&mut buf);
                buf
            });
        },
    );
}

//! Property-based integration tests (proptest): the system's core
//! invariants under randomized problems, partitions and machines.

use distconv::conv::gvm::GvmExecutor;
use distconv::conv::kernels::{conv2d_direct, conv2d_im2col, workload};
use distconv::core::DistConv;
use distconv::cost::brute::{brute_eq4, brute_eq4_conforming, property5_holds};
use distconv::cost::closed_form::{ml_deflate, solve_table1};
use distconv::cost::exact::{eq3_cost_int, eq3_footprint_g};
use distconv::cost::simplified::InnerLoop;
use distconv::cost::{Conv2dProblem, MachineSpec, Partition, Planner, Tiling};
use distconv::tensor::assert_close;
use proptest::prelude::*;

/// Random small conv problems (kept tiny: the references are O(N^7)).
fn arb_problem() -> impl Strategy<Value = Conv2dProblem> {
    (
        1usize..=3,       // nb
        1usize..=6,       // nk
        1usize..=6,       // nc
        1usize..=5,       // nh
        1usize..=5,       // nw
        1usize..=3,       // nr
        1usize..=3,       // ns
        1usize..=2,       // sw
        1usize..=2,       // sh
    )
        .prop_map(|(nb, nk, nc, nh, nw, nr, ns, sw, sh)| {
            Conv2dProblem::new(nb, nk, nc, nh, nw, nr, ns, sw, sh)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn direct_equals_im2col(p in arb_problem(), seed in any::<u64>()) {
        let (input, ker) = workload::<f64>(&p, seed);
        let a = conv2d_direct(&p, &input, &ker);
        let b = conv2d_im2col(&p, &input, &ker);
        assert_close(a.as_slice(), b.as_slice(), 1e-10, "direct vs im2col");
    }

    #[test]
    fn gvm_correct_for_random_divisor_tilings(
        p in arb_problem(),
        seed in any::<u64>(),
    ) {
        // Whole-problem partition, largest proper divisor tiles.
        let w = Partition::new(p.nb, p.nk, p.nc, p.nh, p.nw);
        let half = |n: usize| if n.is_multiple_of(2) { n / 2 } else { n };
        let t = Tiling::new(half(p.nb), half(p.nk), 1, half(p.nh), half(p.nw));
        let ex = GvmExecutor::new(p, w, t, InnerLoop::C, None).unwrap();
        let (input, ker) = workload::<f64>(&p, seed);
        let (out, meas) = ex.execute_all(&input, &ker).unwrap();
        let reference = conv2d_direct(&p, &input, &ker);
        assert_close(out.as_slice(), reference.as_slice(), 1e-10, "gvm");
        // Stride 1 ⇒ exact model equality; otherwise bounded by it.
        let model = eq3_cost_int(&p, &w, &t).unwrap();
        let measured = meas[0].total_traffic();
        if p.sw == 1 && p.sh == 1 {
            prop_assert_eq!(measured, model);
        } else {
            prop_assert!(measured <= model);
        }
    }

    #[test]
    fn ml_deflation_always_fits(p in arb_problem(), mexp in 8u32..22) {
        let m = (1u64 << mexp) as f64;
        let m_l = ml_deflate(m, &p);
        prop_assert!(m_l <= m);
        // Identity: M_L + 3K√M_L == M (when not floored at 1).
        if m_l > 1.0 {
            let k = p.k_const();
            let recon = m_l + 3.0 * k * m_l.sqrt();
            prop_assert!((recon - m).abs() / m < 1e-9);
        }
    }

    #[test]
    fn property5_or_certified_integrality_gap(
        p in arb_problem(),
        procs in 1usize..=8,
        mexp in 5u32..18,
    ) {
        // The paper proves Property (5) for the continuous relaxation.
        // On the *integer* problem, divisor constraints can exclude
        // every conforming point (found by this very test — see
        // EXPERIMENTS.md E4). So: either the integer optimum conforms,
        // or the conforming search certifies that no conforming point
        // matches it.
        let m_l = (1u64 << mexp) as f64;
        if let Some(b) = brute_eq4(&p, procs, m_l, InnerLoop::C) {
            if !property5_holds(&p, &b.vars) {
                match brute_eq4_conforming(&p, procs, m_l, InnerLoop::C) {
                    None => {} // no conforming feasible point at all
                    Some(c) => prop_assert!(
                        c.cost > b.cost * (1.0 + 1e-12),
                        "conforming point {:?} matches the optimum — real violation!",
                        c.vars
                    ),
                }
            }
            // And the closed form lower-bounds the integer optimum.
            let cf = solve_table1(&p, procs, m_l);
            prop_assert!(cf.cost <= b.cost * (1.0 + 1e-9));
        }
    }

    #[test]
    fn footprint_monotone_in_tiles(p in arb_problem()) {
        // g is monotone: growing any tile dimension cannot shrink the
        // footprint.
        let t1 = Tiling::new(1, 1, 1, 1, 1);
        let t2 = Tiling::new(p.nb, p.nk, p.nc, p.nh, p.nw);
        prop_assert!(eq3_footprint_g(&p, &t1) <= eq3_footprint_g(&p, &t2));
    }
}

proptest! {
    // The distributed runs spawn threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn distributed_equals_sequential(
        p in arb_problem(),
        procs_exp in 0u32..=3,
        seed in any::<u64>(),
    ) {
        let procs = 1usize << procs_exp;
        let Ok(plan) = Planner::new(p, MachineSpec::new(procs, 1 << 22)).plan() else {
            // Not all random problems factor over all P — that is the
            // planner's documented Unfactorable case, not a bug.
            return Ok(());
        };
        let r = DistConv::<f64>::new(plan).run_verified(seed)
            .expect("distributed result must match reference");
        prop_assert!(r.verified);
        prop_assert_eq!(r.measured_volume() as u128, r.expected.total());
    }
}

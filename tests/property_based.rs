//! Property-based integration tests: the system's core invariants
//! under randomized problems, partitions and machines. Runs on the
//! in-tree `distconv::par::proptest_mini` harness (replay a failing
//! case with `DISTCONV_PROPTEST_SEED=<seed from the failure report>`).

use distconv::conv::gvm::GvmExecutor;
use distconv::conv::kernels::{conv2d_direct, conv2d_im2col, workload};
use distconv::core::DistConv;
use distconv::cost::brute::{brute_eq4, brute_eq4_conforming, property5_holds};
use distconv::cost::closed_form::{ml_deflate, solve_table1};
use distconv::cost::exact::{eq3_cost_int, eq3_footprint_g};
use distconv::cost::simplified::InnerLoop;
use distconv::cost::{Conv2dProblem, MachineSpec, Partition, Planner, Tiling};
use distconv::par::proptest_mini::{check, Config, Gen};
use distconv::tensor::assert_close;

/// Random small conv problems (kept tiny: the references are O(N^7)).
fn arb_problem(g: &mut Gen) -> Conv2dProblem {
    Conv2dProblem::new(
        g.usize_in(1, 3), // nb
        g.usize_in(1, 6), // nk
        g.usize_in(1, 6), // nc
        g.usize_in(1, 5), // nh
        g.usize_in(1, 5), // nw
        g.usize_in(1, 3), // nr
        g.usize_in(1, 3), // ns
        g.usize_in(1, 2), // sw
        g.usize_in(1, 2), // sh
    )
}

#[test]
fn direct_equals_im2col() {
    check("direct_equals_im2col", Config::with_cases(48), |g| {
        let p = arb_problem(g);
        let seed = g.u64();
        let (input, ker) = workload::<f64>(&p, seed);
        let a = conv2d_direct(&p, &input, &ker);
        let b = conv2d_im2col(&p, &input, &ker);
        assert_close(a.as_slice(), b.as_slice(), 1e-10, "direct vs im2col");
    });
}

#[test]
fn gvm_correct_for_random_divisor_tilings() {
    check(
        "gvm_correct_for_random_divisor_tilings",
        Config::with_cases(48),
        |g| {
            let p = arb_problem(g);
            let seed = g.u64();
            // Whole-problem partition, largest proper divisor tiles.
            let w = Partition::new(p.nb, p.nk, p.nc, p.nh, p.nw);
            let half = |n: usize| if n.is_multiple_of(2) { n / 2 } else { n };
            let t = Tiling::new(half(p.nb), half(p.nk), 1, half(p.nh), half(p.nw));
            let ex = GvmExecutor::new(p, w, t, InnerLoop::C, None).unwrap();
            let (input, ker) = workload::<f64>(&p, seed);
            let (out, meas) = ex.execute_all(&input, &ker).unwrap();
            let reference = conv2d_direct(&p, &input, &ker);
            assert_close(out.as_slice(), reference.as_slice(), 1e-10, "gvm");
            // Stride 1 ⇒ exact model equality; otherwise bounded by it.
            let model = eq3_cost_int(&p, &w, &t).unwrap();
            let measured = meas[0].total_traffic();
            if p.sw == 1 && p.sh == 1 {
                assert_eq!(measured, model);
            } else {
                assert!(measured <= model);
            }
        },
    );
}

#[test]
fn ml_deflation_always_fits() {
    check("ml_deflation_always_fits", Config::with_cases(48), |g| {
        let p = arb_problem(g);
        let mexp = g.u32_in(8, 21);
        let m = (1u64 << mexp) as f64;
        let m_l = ml_deflate(m, &p);
        assert!(m_l <= m);
        // Identity: M_L + 3K√M_L == M (when not floored at 1).
        if m_l > 1.0 {
            let k = p.k_const();
            let recon = m_l + 3.0 * k * m_l.sqrt();
            assert!((recon - m).abs() / m < 1e-9);
        }
    });
}

/// The Property-(5) check for one concrete (problem, procs, M_L) point;
/// shared by the randomized sweep and the pinned regression below.
fn check_property5_or_certified_gap(p: Conv2dProblem, procs: usize, mexp: u32) {
    // The paper proves Property (5) for the continuous relaxation.
    // On the *integer* problem, divisor constraints can exclude
    // every conforming point (found by this very test — see
    // EXPERIMENTS.md E4). So: either the integer optimum conforms,
    // or the conforming search certifies that no conforming point
    // matches it.
    let m_l = (1u64 << mexp) as f64;
    if let Some(b) = brute_eq4(&p, procs, m_l, InnerLoop::C) {
        if !property5_holds(&p, &b.vars) {
            match brute_eq4_conforming(&p, procs, m_l, InnerLoop::C) {
                None => {} // no conforming feasible point at all
                Some(c) => assert!(
                    c.cost > b.cost * (1.0 + 1e-12),
                    "conforming point {:?} matches the optimum — real violation!",
                    c.vars
                ),
            }
        }
        // And the closed form lower-bounds the integer optimum.
        let cf = solve_table1(&p, procs, m_l);
        assert!(cf.cost <= b.cost * (1.0 + 1e-9));
    }
}

#[test]
fn property5_or_certified_integrality_gap() {
    check(
        "property5_or_certified_integrality_gap",
        Config::with_cases(48),
        |g| {
            let p = arb_problem(g);
            let procs = g.usize_in(1, 8);
            let mexp = g.u32_in(5, 17);
            check_property5_or_certified_gap(p, procs, mexp);
        },
    );
}

/// Pinned regression: this exact point once tripped the Property-(5)
/// sweep (migrated from the historical proptest regression file so the
/// counterexample is exercised on every run, not only when the random
/// sweep rediscovers it).
#[test]
fn property5_regression_nb2_nk6_nc6() {
    let p = Conv2dProblem::new(2, 6, 6, 3, 5, 1, 1, 1, 1);
    check_property5_or_certified_gap(p, 8, 5);
}

#[test]
fn footprint_monotone_in_tiles() {
    check("footprint_monotone_in_tiles", Config::with_cases(48), |g| {
        let p = arb_problem(g);
        // g is monotone: growing any tile dimension cannot shrink the
        // footprint.
        let t1 = Tiling::new(1, 1, 1, 1, 1);
        let t2 = Tiling::new(p.nb, p.nk, p.nc, p.nh, p.nw);
        assert!(eq3_footprint_g(&p, &t1) <= eq3_footprint_g(&p, &t2));
    });
}

#[test]
fn distributed_equals_sequential() {
    // The distributed runs spawn threads; keep the case count modest.
    check(
        "distributed_equals_sequential",
        Config::with_cases(16),
        |g| {
            let p = arb_problem(g);
            let procs = 1usize << g.u32_in(0, 3);
            let seed = g.u64();
            let Ok(plan) = Planner::new(p, MachineSpec::new(procs, 1 << 22)).plan() else {
                // Not all random problems factor over all P — that is the
                // planner's documented Unfactorable case, not a bug.
                return;
            };
            let r = DistConv::<f64>::new(plan)
                .run_verified(seed)
                .expect("distributed result must match reference");
            assert!(r.verified);
            assert_eq!(r.measured_volume() as u128, r.expected.total());
        },
    );
}

//! Failure injection: the system must fail loudly and precisely, not
//! silently corrupt results.

use distconv::conv::gvm::{GvmError, GvmExecutor};
use distconv::conv::kernels::workload;
use distconv::core::{run_training_step, run_training_step_recovering, DistConv};
use distconv::cost::exact::eq3_footprint_g;
use distconv::cost::simplified::InnerLoop;
use distconv::cost::{Conv2dProblem, MachineSpec, Partition, Planner, Tiling};
use distconv::simnet::{Communicator, FaultPlan, Machine, MachineConfig};
use std::time::Duration;

#[test]
fn mismatched_collective_trips_deadlock_trap() {
    // Rank 1 never joins the broadcast: rank 0 must hit the trap with a
    // diagnostic instead of hanging forever.
    let cfg = MachineConfig {
        recv_timeout: Duration::from_millis(100),
        ..MachineConfig::default()
    };
    let result = std::panic::catch_unwind(|| {
        Machine::run::<f32, _, _>(2, cfg, |rank| {
            if rank.id() == 0 {
                let comm = Communicator::world(rank);
                let mut buf = vec![0.0f32; 4];
                comm.bcast(1, &mut buf); // waits for rank 1, who never sends
            }
        })
    });
    let err = result.expect_err("must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("deadlock trap"), "got: {msg}");
}

#[test]
fn memory_over_commit_is_attributed_to_the_rank() {
    let cfg = MachineConfig {
        mem_capacity: Some(50),
        ..MachineConfig::default()
    };
    let result = std::panic::catch_unwind(|| {
        Machine::run::<f32, _, _>(3, cfg, |rank| {
            if rank.id() == 2 {
                let _l = rank.mem().lease_or_panic(51);
            }
        })
    });
    let err = result.expect_err("must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("rank 2 out of memory"), "got: {msg}");
}

#[test]
fn gvm_memory_violation_is_an_error_not_a_panic() {
    let p = Conv2dProblem::square(2, 4, 4, 4, 3);
    let w = Partition::new(2, 4, 4, 4, 4);
    let t = Tiling::new(2, 4, 4, 4, 4); // whole problem in one tile
    let g = eq3_footprint_g(&p, &t);
    let ex = GvmExecutor::new(p, w, t, InnerLoop::C, Some(g - 1)).unwrap();
    let (input, ker) = workload::<f32>(&p, 1);
    match ex.execute_all(&input, &ker) {
        Err(GvmError::TileExceedsMemory { needed, capacity }) => {
            assert!(needed > capacity);
        }
        other => panic!("expected TileExceedsMemory, got {other:?}"),
    }
}

#[test]
fn distconv_memory_enforcement_fires_on_a_lying_plan() {
    let p = Conv2dProblem::square(2, 8, 8, 4, 3);
    let mut plan = Planner::new(p, MachineSpec::new(4, 1 << 20))
        .plan()
        .unwrap();
    plan.machine.mem = 16; // claim 16 words of memory per rank
    let result =
        std::panic::catch_unwind(|| DistConv::<f32>::new(plan).enforce_memory(true).run(1));
    assert!(result.is_err());
}

#[test]
fn honest_plan_fits_under_enforcement() {
    // A plan the planner itself produced, run with the capacity it was
    // planned for plus the documented spatial-halo slack, must fit.
    let p = Conv2dProblem::square(2, 8, 8, 4, 3);
    let plan = Planner::new(p, MachineSpec::new(4, 1 << 20))
        .plan()
        .unwrap();
    let r = DistConv::<f32>::new(plan)
        .enforce_memory(true)
        .run_verified(1)
        .expect("planned capacity must suffice");
    assert!(r.verified);
    assert!(r.max_peak_mem() <= 1 << 20);
}

#[test]
fn rank_panic_does_not_hang_the_machine() {
    let cfg = MachineConfig {
        recv_timeout: Duration::from_millis(200),
        ..MachineConfig::default()
    };
    let result = std::panic::catch_unwind(|| {
        Machine::run::<f32, _, _>(4, cfg, |rank| {
            if rank.id() == 3 {
                panic!("injected fault");
            }
            // Other ranks wait on rank 3 and must be released by the trap.
            let comm = Communicator::world(rank);
            comm.barrier();
        })
    });
    assert!(result.is_err(), "fault must propagate, not hang");
}

#[test]
fn crashed_training_step_recovers_to_the_fault_free_result() {
    // A rank crashes mid-step (at its 3rd send, pinned fault seed). The
    // checkpoint/restart driver must detect the injected crash, retry
    // the step without it, and land on exactly the fault-free result —
    // with the recovery and its wasted traffic reported, not hidden.
    let p = Conv2dProblem::square(4, 8, 8, 4, 3);
    let plan = Planner::new(p, MachineSpec::new(4, 1 << 20))
        .plan()
        .unwrap();
    let clean = run_training_step::<f64>(plan, 42, MachineConfig::default())
        .expect("fault-free step must succeed");
    assert!(!clean.recovered && clean.retries == 0);

    let cfg = MachineConfig {
        recv_timeout: Duration::from_millis(300),
        faults: FaultPlan::reliable(0xFA_117).with_crash(2, 3),
        ..MachineConfig::default()
    };
    let r = run_training_step_recovering::<f64>(plan, 42, cfg).expect("step must recover");
    assert!(r.recovered, "injected crash must be reported as recovered");
    assert_eq!(r.retries, 1);
    assert!(r.forward_verified && r.grad_verified);
    assert_eq!(
        r.measured_volume(),
        clean.measured_volume(),
        "recovered step must match the fault-free step's algorithmic volume"
    );
    assert!(
        r.retry_elems > 0,
        "the aborted attempt's cost must be reported"
    );
}

#[test]
fn persistent_crash_finishes_degraded_on_the_event_backend() {
    // A persistent crash survives every checkpoint/restart retry; once
    // MAX_STEP_RETRIES is exhausted the driver must re-plan over the
    // survivors, redistribute the checkpoint, and finish correct on the
    // shrunken grid — on the discrete-event backend, in virtual time.
    use distconv::simnet::Backend;
    let p = Conv2dProblem::square(4, 8, 8, 8, 3);
    let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
        .plan()
        .unwrap();
    let cfg = MachineConfig {
        recv_timeout: Duration::from_millis(300),
        faults: FaultPlan::reliable(0xC4A5).with_persistent_crash(0, 2),
        backend: Backend::Event,
        ..MachineConfig::default()
    };
    let r = DistConv::<f64>::new(plan)
        .with_config(cfg)
        .run_recovering(7)
        .expect("must finish degraded, not fail");
    assert!(r.degraded && r.recovered && r.verified);
    let info = r.degrade.as_ref().expect("degrade details");
    assert_eq!(info.old_grid, plan.grid);
    assert_eq!(info.dead_ranks, vec![0]);
    assert!(r.plan.grid.total() < 8, "grid must have shrunk");
    assert!(info.redist_elems > 0);
    // Conformance validates the measured traffic at P', not P.
    let rep = r.conformance();
    assert!(rep.pass(), "degraded conformance failed:\n{rep}");
}

#[test]
fn every_failed_rank_is_enumerated_in_the_panic() {
    // Two independent rank failures: the machine's panic must name both,
    // not just whichever thread died first.
    let cfg = MachineConfig {
        recv_timeout: Duration::from_millis(200),
        ..MachineConfig::default()
    };
    let result = std::panic::catch_unwind(|| {
        Machine::run::<f64, _, _>(4, cfg, |rank| match rank.id() {
            1 => panic!("boom from rank 1"),
            3 => panic!("boom from rank 3"),
            _ => {
                let comm = Communicator::world(rank);
                comm.barrier();
            }
        })
    });
    let err = result.expect_err("must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("boom from rank 1"), "got: {msg}");
    assert!(msg.contains("boom from rank 3"), "got: {msg}");
}

#[test]
fn wrong_payload_sizes_are_caught() {
    let result = std::panic::catch_unwind(|| {
        Machine::run::<f64, _, _>(2, MachineConfig::default(), |rank| {
            let comm = Communicator::world(rank);
            // Rank 0 contributes 3 elements, rank 1 contributes 4: the
            // reduce must detect the mismatch.
            let mut buf = vec![1.0; 3 + rank.id()];
            comm.reduce(0, &mut buf);
        })
    });
    let err = result.expect_err("must panic");
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("length mismatch"), "got: {msg}");
}

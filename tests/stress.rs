//! Larger-scale stress tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored`). These push rank counts and
//! problem sizes well past the default suite to catch scalability bugs
//! (tag collisions, queue blowups, accounting overflow) that small
//! configurations cannot.

use distconv::core::{run_network, run_training_step, DistConv, NetworkPlan};
use distconv::cost::{Conv2dProblem, MachineSpec, Planner};
use distconv::simnet::{Communicator, Machine, MachineConfig};

#[test]
#[ignore = "stress: 64 rank threads"]
fn stress_64_ranks_verified() {
    let p = Conv2dProblem::square(8, 32, 32, 8, 3);
    let plan = Planner::new(p, MachineSpec::new(64, 1 << 22))
        .plan()
        .unwrap();
    let r = DistConv::<f32>::new(plan)
        .run_verified(1)
        .expect("verified");
    assert!(r.verified);
    assert_eq!(r.measured_volume() as u128, r.expected.total());
}

#[test]
#[ignore = "stress: 128 rank collective storm"]
fn stress_collective_storm() {
    // Many interleaved collectives on overlapping fibers: exercises the
    // tag/ctx discipline far beyond the normal workloads.
    let r = Machine::run::<f64, _, _>(128, MachineConfig::default(), |rank| {
        let world = Communicator::world(rank);
        let mut acc = 0.0f64;
        for round in 0..20u64 {
            let mut buf = vec![rank.id() as f64 + round as f64; 64];
            world.allreduce(&mut buf);
            acc += buf[0];
            // Split into 8 groups of 16, each doing its own broadcast.
            let colors: Vec<u32> = (0..world.size()).map(|i| (i / 16) as u32).collect();
            let sub = world.split(&colors);
            let mut b = vec![if sub.me() == 0 { round as f64 } else { 0.0 }];
            sub.bcast(0, &mut b);
            acc += b[0];
        }
        acc
    });
    // All ranks computed identical allreduce results.
    let first = r.results[0];
    assert!(r.results.iter().all(|&x| (x - first).abs() < 1e-9));
}

#[test]
#[ignore = "stress: deep network chain"]
fn stress_deep_network() {
    // An 8-layer chain with channel growth and shrinkage.
    let mut layers = Vec::new();
    let mut c = 4usize;
    let mut hw = 20usize;
    for i in 0..8 {
        let k = if i < 4 { c * 2 } else { c / 2 };
        layers.push(Conv2dProblem::new(2, k, c, hw - 2, hw - 2, 3, 3, 1, 1));
        c = k;
        hw -= 2;
    }
    let plan = NetworkPlan::plan(&layers, MachineSpec::new(8, 1 << 24)).unwrap();
    let r = run_network::<f64>(&plan, 3, MachineConfig::default()).expect("verified");
    assert!(r.verified);
    assert_eq!(r.measured_total(), r.expected_total());
}

#[test]
#[ignore = "stress: training at 32 ranks"]
fn stress_training_32_ranks() {
    let p = Conv2dProblem::square(4, 16, 16, 8, 3);
    let plan = Planner::new(p, MachineSpec::new(32, 1 << 22))
        .plan()
        .unwrap();
    let r = run_training_step::<f64>(plan, 5, MachineConfig::default()).expect("verified");
    assert!(r.forward_verified && r.grad_verified);
    assert_eq!(r.measured_volume() as u128, r.expected_total());
}

#[test]
#[ignore = "stress: sustained message pressure"]
fn stress_message_pressure() {
    // 10k small messages per rank pair through the unexpected-message
    // queue (receivers intentionally drain in reverse tag order).
    let n_msgs = 2_000u64;
    let r = Machine::run::<u64, _, _>(4, MachineConfig::default(), move |rank| {
        let next = (rank.id() + 1) % rank.size();
        let prev = (rank.id() + rank.size() - 1) % rank.size();
        for i in 0..n_msgs {
            rank.send(next, i, &[i]);
        }
        let mut sum = 0u64;
        for i in (0..n_msgs).rev() {
            sum += rank.recv(prev, i)[0];
        }
        sum
    });
    let expect: u64 = (0..2_000).sum();
    assert!(r.results.iter().all(|&x| x == expect));
}

//! Cross-crate integration: baselines vs the paper's algorithm, and
//! the matmul analogy, on shared workloads.

use distconv::baselines::{
    run_data_parallel, run_filter_parallel, run_spatial_parallel, spatial_feasible,
};
use distconv::core::DistConv;
use distconv::cost::{Conv2dProblem, MachineSpec, Planner};
use distconv::distmm::{run_25d, run_dns3d, run_summa, MatmulDims};
use distconv::simnet::MachineConfig;

#[test]
fn all_schemes_agree_on_the_same_layer() {
    // Same layer, same seed: every scheme's verification compares
    // against the same sequential reference — so all passing means all
    // four distribution strategies compute the same function.
    let p = Conv2dProblem::square(4, 8, 8, 8, 3);
    let cfg = MachineConfig::default();
    let procs = 4;
    let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
        .plan()
        .unwrap();
    let dc = DistConv::<f64>::new(plan).run_verified(77).unwrap();
    assert!(dc.verified);
    assert!(run_data_parallel(p, procs, 77, true, cfg).verified);
    assert!(spatial_feasible(&p, procs));
    assert!(run_spatial_parallel(p, procs, 77, cfg).verified);
    assert!(run_filter_parallel(p, procs, 77, cfg).verified);
}

#[test]
fn filter_parallel_recurring_grows_linearly_distconv_sublinearly() {
    // The failure mode the paper fixes: input replication scales with
    // P, broadcasts of tiles do not.
    let p = Conv2dProblem::square(4, 16, 16, 8, 3);
    let cfg = MachineConfig::default();
    let f4 = run_filter_parallel(p, 4, 1, cfg).analytic_recurring;
    let f16 = run_filter_parallel(p, 16, 1, cfg).analytic_recurring;
    assert_eq!(f16 / f4, 5, "(16−1)/(4−1) = 5x input replication");

    let v4 = {
        let plan = Planner::new(p, MachineSpec::new(4, 1 << 20))
            .plan()
            .unwrap();
        DistConv::<f64>::new(plan).run(1).measured_volume()
    };
    let v16 = {
        let plan = Planner::new(p, MachineSpec::new(16, 1 << 20))
            .plan()
            .unwrap();
        DistConv::<f64>::new(plan).run(1).measured_volume()
    };
    assert!(
        (v16 as f64) < 5.0 * v4 as f64,
        "distconv total volume must grow sublinearly vs filter-parallel: {v4} -> {v16}"
    );
}

#[test]
fn matmul_analogy_one_by_one_conv() {
    let p = Conv2dProblem::new(2, 16, 16, 4, 4, 1, 1, 1, 1);
    let dims = MatmulDims::new(p.nbhw(), p.nk, p.nc);
    let cfg = MachineConfig::default();

    // All three matmul algorithms verified on the reduced problem.
    assert!(run_summa(dims, 2, 4, cfg).verified);
    assert!(run_25d(dims, 2, 2, cfg).verified);
    assert!(run_dns3d(dims, 2, cfg).verified);

    // The CNN algorithm on the same computation.
    let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
        .plan()
        .unwrap();
    let r = DistConv::<f64>::new(plan).run_verified(9).unwrap();
    assert!(r.verified);
}

#[test]
fn regime_analogy_tracks_matmul_tradeoff() {
    // On a channel-heavy (inner-dimension-heavy) problem, both the CNN
    // planner and the matmul family prefer replication when memory
    // allows; both costs drop relative to their 2D variants.
    let p = Conv2dProblem::new(2, 16, 64, 4, 4, 1, 1, 1, 1);
    let procs = 16;
    let free = Planner::new(p, MachineSpec::new(procs, 1 << 24))
        .plan()
        .unwrap();
    let forced2d = Planner::new(p, MachineSpec::new(procs, 1 << 24))
        .with_forced_pc(1)
        .plan()
        .unwrap();
    assert!(
        free.predicted.cost_d <= forced2d.predicted.cost_d,
        "planner must never lose to its own restricted family"
    );

    let dims = MatmulDims::new(p.nbhw(), p.nk, p.nc);
    let v2d = run_summa(dims, 4, 4, MachineConfig::default());
    let v25 = run_25d(dims, 2, 4, MachineConfig::default());
    assert!(v2d.verified && v25.verified);
    // The analogy is qualitative: both families expose the same knob.
    // (Exact volumes differ by constant factors in schedule details.)
    if free.grid.pc > 1 {
        assert!(
            v25.stats.total_elems() != v2d.stats.total_elems(),
            "replication must change matmul volume too"
        );
    }
}

#[test]
fn distconv_advantage_grows_from_early_to_late_layers() {
    // The E9 shape claim, at simulator scale: relative to the
    // data-parallel gradient all-reduce, the paper's algorithm gets
    // *better* as layers get kernel-heavy (late layers), which is where
    // the full-scale crossover comes from.
    let cfg = MachineConfig::default();
    let procs = 4;

    let ratio_for = |p: Conv2dProblem| -> f64 {
        let dp = run_data_parallel(p, procs, 3, true, cfg);
        assert!(dp.verified);
        let dp_grad = 2.0 * (procs as f64 - 1.0) * p.size_ker() as f64;
        let plan = Planner::new(p, MachineSpec::new(procs, 1 << 22))
            .plan()
            .unwrap();
        let dc = DistConv::<f64>::new(plan).run(3);
        dc.measured_volume() as f64 / dp_grad
    };

    // Tiny kernel, big image vs big kernel, tiny image.
    let early = Conv2dProblem::new(4, 8, 4, 16, 16, 1, 1, 1, 1);
    let late = Conv2dProblem::new(4, 64, 64, 2, 2, 3, 3, 1, 1);
    let r_early = ratio_for(early);
    let r_late = ratio_for(late);
    assert!(
        r_late < r_early,
        "distconv/dp ratio should fall from early ({r_early:.3}) to late ({r_late:.3}) layers"
    );
}

//! End-to-end integration: plan → distribute → execute → reduce →
//! verify, across regimes, dtypes and grid families.

use distconv::core::{expected_volumes, DistConv};
use distconv::cost::{Conv2dProblem, MachineSpec, PlanError, Planner};

#[test]
fn full_pipeline_across_processor_counts() {
    let p = Conv2dProblem::square(4, 16, 16, 8, 3);
    for procs in [1usize, 2, 4, 8, 16, 32] {
        let plan = Planner::new(p, MachineSpec::new(procs, 1 << 20))
            .plan()
            .unwrap_or_else(|e| panic!("P={procs}: {e}"));
        assert_eq!(plan.grid.total(), procs);
        let r = DistConv::<f64>::new(plan)
            .run_verified(99)
            .expect("verified");
        assert_eq!(
            r.measured_volume() as u128,
            expected_volumes(&plan).total(),
            "P={procs}"
        );
    }
}

#[test]
fn both_dtypes_agree_on_volume() {
    let p = Conv2dProblem::square(2, 8, 8, 8, 3);
    let plan = Planner::new(p, MachineSpec::new(8, 1 << 18))
        .plan()
        .unwrap();
    let r32 = DistConv::<f32>::new(plan).run_verified(5).unwrap();
    let r64 = DistConv::<f64>::new(plan).run_verified(5).unwrap();
    // Identical schedule → identical element counts, regardless of dtype.
    assert_eq!(r32.measured_volume(), r64.measured_volume());
    assert_eq!(r32.stats.per_rank_elems, r64.stats.per_rank_elems);
}

#[test]
fn forced_grid_families_all_verify() {
    let p = Conv2dProblem::square(2, 8, 16, 4, 3);
    for pc in [1usize, 2, 4] {
        let Ok(plan) = Planner::new(p, MachineSpec::new(8, 1 << 20))
            .with_forced_pc(pc)
            .plan()
        else {
            continue;
        };
        assert_eq!(plan.grid.pc, pc);
        let r = DistConv::<f64>::new(plan)
            .run_verified(17)
            .expect("verified");
        assert_eq!(r.measured_volume() as u128, r.expected.total(), "pc={pc}");
    }
}

#[test]
fn constant_gap_theorem_every_plan() {
    // cost_D − cost == (|In|+|Ker|)/P for every plan the planner emits.
    for (p, procs) in [
        (Conv2dProblem::square(4, 16, 16, 8, 3), 8usize),
        (Conv2dProblem::new(2, 8, 8, 6, 4, 3, 5, 1, 1), 4),
        (Conv2dProblem::new(4, 16, 16, 8, 8, 3, 3, 2, 2), 16),
    ] {
        let plan = Planner::new(p, MachineSpec::new(procs, 1 << 22))
            .plan()
            .unwrap();
        let gap = plan.predicted.cost_d - plan.predicted.cost_gvm;
        let theorem = (p.size_in_paper() + p.size_ker()) as f64 / procs as f64;
        assert!(
            (gap - theorem).abs() < 1e-6,
            "{p:?} P={procs}: gap {gap} vs theorem {theorem}"
        );
    }
}

#[test]
fn volume_decreases_with_memory() {
    // The headline trade-off, measured (not just predicted): more
    // per-rank memory must never increase realized traffic.
    let p = Conv2dProblem::square(4, 16, 32, 4, 3);
    let mut prev = u64::MAX;
    for mem in [1usize << 12, 1 << 14, 1 << 18, 1 << 22] {
        let Ok(plan) = Planner::new(p, MachineSpec::new(16, mem)).plan() else {
            continue;
        };
        let r = DistConv::<f64>::new(plan).run_verified(3).unwrap();
        assert!(
            r.measured_volume() <= prev,
            "mem={mem}: {} after {prev}",
            r.measured_volume()
        );
        prev = r.measured_volume();
    }
    assert!(
        prev < u64::MAX,
        "at least one memory level must be feasible"
    );
}

#[test]
fn planner_failure_modes_are_typed() {
    let p = Conv2dProblem::square(4, 16, 16, 8, 3);
    // Far too little memory.
    match Planner::new(p, MachineSpec::new(8, 16)).plan() {
        Err(PlanError::InsufficientMemory { needed, available }) => {
            assert!(needed > available);
        }
        other => panic!("expected InsufficientMemory, got {other:?}"),
    }
    // Prime processor count not dividing anything.
    match Planner::new(p, MachineSpec::new(23, 1 << 22)).plan() {
        Err(PlanError::Unfactorable { p: 23 }) => {}
        other => panic!("expected Unfactorable, got {other:?}"),
    }
}

#[test]
fn seeds_change_data_not_volume() {
    let p = Conv2dProblem::square(2, 8, 8, 4, 3);
    let plan = Planner::new(p, MachineSpec::new(4, 1 << 18))
        .plan()
        .unwrap();
    let a = DistConv::<f64>::new(plan).run_verified(1).unwrap();
    let b = DistConv::<f64>::new(plan).run_verified(2).unwrap();
    assert_eq!(a.measured_volume(), b.measured_volume());
}

#[test]
fn non_power_of_two_extents() {
    // 6 = 2·3 and 12 = 2²·3 exercise non-dyadic divisor grids.
    let p = Conv2dProblem::new(6, 12, 6, 6, 6, 3, 3, 1, 1);
    for procs in [2usize, 3, 6, 12] {
        let Ok(plan) = Planner::new(p, MachineSpec::new(procs, 1 << 20)).plan() else {
            panic!("P={procs} should be plannable for 6/12 extents");
        };
        let r = DistConv::<f64>::new(plan)
            .run_verified(7)
            .expect("verified");
        assert_eq!(r.measured_volume() as u128, r.expected.total(), "P={procs}");
    }
}

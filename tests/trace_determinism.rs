//! Trace determinism: the canonical (wall-clock-stripped) span trace
//! of a run is a pure function of the schedule — identical across
//! `CommMode::{Blocking,Overlapped}` and across `DISTCONV_THREADS`
//! settings.
//!
//! Cross-mode equality is asserted directly. Cross-thread-count
//! equality is asserted via the committed golden digests below: CI runs
//! this suite in both the `DISTCONV_THREADS=1` and `DISTCONV_THREADS=4`
//! legs, and both must reproduce the same numbers.

use distconv_core::DistConv;
use distconv_cost::{Conv2dProblem, MachineSpec, Planner};
use distconv_distmm::{summa_rank_body_mode, MatmulDims};
use distconv_par::CommMode;
use distconv_simnet::{Machine, MachineConfig};
use distconv_trace::RunTrace;

/// Golden digest of the representative conv layer's canonical trace.
/// If a deliberate schedule change moves this, update it and say why in
/// the commit message — an *unexplained* move is a trace regression.
const CONV_GOLDEN_DIGEST: u64 = 0x7872_a055_3ccd_7382;

/// Golden digest of the SUMMA canonical trace.
const SUMMA_GOLDEN_DIGEST: u64 = 0x96b1_8902_610d_41f7;

fn conv_trace(mode: CommMode) -> RunTrace {
    let p = Conv2dProblem::square(4, 16, 16, 8, 3);
    let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
        .plan()
        .unwrap();
    DistConv::<f64>::new(plan)
        .with_comm_mode(mode)
        .run_verified(23)
        .unwrap()
        .trace
}

fn summa_trace(mode: CommMode) -> RunTrace {
    let d = MatmulDims::new(30, 20, 25);
    Machine::try_run::<f64, _, _>(6, MachineConfig::default(), move |rank| {
        summa_rank_body_mode(rank, &d, 2, 3, mode)
    })
    .unwrap()
    .trace
}

#[test]
fn conv_canonical_trace_is_mode_independent() {
    let blocking = conv_trace(CommMode::Blocking);
    let overlapped = conv_trace(CommMode::Overlapped);
    assert!(!blocking.is_empty(), "tracing is on by default");
    assert_eq!(blocking.total_dropped(), 0, "ring must not wrap");
    assert_eq!(
        blocking.canonical(),
        overlapped.canonical(),
        "canonical conv trace differs between comm modes"
    );
    assert_eq!(
        blocking.digest(),
        CONV_GOLDEN_DIGEST,
        "conv trace digest moved (got {:#018x}) — schedule change or trace regression",
        blocking.digest()
    );
}

#[test]
fn summa_canonical_trace_is_mode_independent() {
    let blocking = summa_trace(CommMode::Blocking);
    let overlapped = summa_trace(CommMode::Overlapped);
    assert!(!blocking.is_empty(), "tracing is on by default");
    assert_eq!(blocking.total_dropped(), 0, "ring must not wrap");
    assert_eq!(
        blocking.canonical(),
        overlapped.canonical(),
        "canonical SUMMA trace differs between comm modes"
    );
    assert_eq!(
        blocking.digest(),
        SUMMA_GOLDEN_DIGEST,
        "SUMMA trace digest moved (got {:#018x}) — schedule change or trace regression",
        blocking.digest()
    );
}

#[test]
fn repeat_runs_reproduce_the_digest() {
    // Same mode, two runs: the digest is a pure function of the
    // schedule, not of thread interleaving or wall-clock.
    let a = conv_trace(CommMode::Overlapped);
    let b = conv_trace(CommMode::Overlapped);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.canonical(), b.canonical());
}

//! Backend equivalence: every algorithmic observable of a run —
//! results, communication counters, peak memory, Lamport makespan, and
//! the canonical trace digest — must be **bitwise identical** between
//! the thread-per-rank backend and the discrete-event backend.
//!
//! This is the contract that makes the event backend's thousand-rank
//! sweeps evidence about the *algorithms* rather than about the
//! simulator: DESIGN.md §10 explains why the property holds (FIFO
//! `(src, tag)` matching, sender-side counters, schedule-independent
//! Lamport clock rules); this suite pins it on the GVM conv executor,
//! all four distmm algorithms, a baseline, and property-sampled shapes.
//!
//! Shapes are sampled from a seeded PRNG (override with
//! `DISTCONV_PROPTEST_SEED` to explore; failures print the seed).

use distconv_baselines::try_run_data_parallel;
use distconv_core::DistConv;
use distconv_cost::{Conv2dProblem, MachineSpec, Planner};
use distconv_distmm::{try_run_25d, try_run_cannon, try_run_dns3d, try_run_summa, MatmulDims};
use distconv_simnet::{Backend, MachineConfig};

fn cfg_for(backend: Backend) -> MachineConfig {
    MachineConfig {
        backend,
        ..MachineConfig::default()
    }
}

/// Deterministic SplitMix64 (the workspace's standard PRNG idiom).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

fn sample_seed() -> u64 {
    std::env::var("DISTCONV_PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xD15C_0B0D)
}

#[test]
fn conv_executor_is_backend_equivalent() {
    // The representative layer of the trace-determinism golden, plus
    // sampled layers: run on both backends, compare everything.
    let seed = sample_seed();
    let mut rng = Rng(seed);
    let mut layers = vec![Conv2dProblem::square(4, 16, 16, 8, 3)];
    for _ in 0..2 {
        layers.push(Conv2dProblem::square(
            rng.range(2, 4),
            4 * rng.range(2, 4),
            4 * rng.range(2, 4),
            8,
            3,
        ));
    }
    for problem in layers {
        let plan = Planner::new(problem, MachineSpec::new(8, 1 << 20))
            .plan()
            .unwrap_or_else(|e| panic!("seed {seed:#x}: no plan for {problem:?}: {e}"));
        let run = |backend| {
            DistConv::<f64>::new(plan)
                .with_config(cfg_for(backend))
                .run_with_outputs(23)
                .unwrap_or_else(|e| panic!("seed {seed:#x} {backend:?}: {e}"))
        };
        let (ra, outs_a) = run(Backend::Thread);
        let (rb, outs_b) = run(Backend::Event);
        assert_eq!(ra.stats, rb.stats, "seed {seed:#x} counters");
        assert_eq!(ra.peak_mem, rb.peak_mem, "seed {seed:#x} peak memory");
        assert_eq!(
            ra.makespan.to_bits(),
            rb.makespan.to_bits(),
            "seed {seed:#x} makespan"
        );
        assert_eq!(
            ra.trace.digest(),
            rb.trace.digest(),
            "seed {seed:#x} canonical trace digest"
        );
        assert_eq!(outs_a.len(), outs_b.len());
        for (a, b) in outs_a.iter().zip(&outs_b) {
            assert_eq!(a.coords, b.coords, "seed {seed:#x}");
            assert_eq!(a.out_origin, b.out_origin, "seed {seed:#x}");
            assert_eq!(a.slice, b.slice, "seed {seed:#x} output slices differ");
        }
    }
}

#[test]
fn distmm_algorithms_are_backend_equivalent() {
    // Sampled dims for all four matmul algorithms. `verified` already
    // checks numerics against the sequential reference; the cross-
    // backend assertions check counters, makespan, and trace digest.
    let seed = sample_seed();
    let mut rng = Rng(seed ^ 0xA11);
    for case in 0..3 {
        let d = MatmulDims::new(
            6 * rng.range(2, 5),
            6 * rng.range(2, 5),
            6 * rng.range(2, 5),
        );
        type Runner = Box<dyn Fn(Backend) -> distconv_distmm::MmReport>;
        let runs: Vec<(&str, Runner)> = vec![
            (
                "summa",
                Box::new(move |b| try_run_summa(d, 2, 3, cfg_for(b)).unwrap()),
            ),
            (
                "cannon",
                Box::new(move |b| try_run_cannon(d, 3, cfg_for(b)).unwrap()),
            ),
            (
                "dns3d",
                Box::new(move |b| try_run_dns3d(d, 2, cfg_for(b)).unwrap()),
            ),
            (
                "s25d",
                Box::new(move |b| try_run_25d(d, 2, 2, cfg_for(b)).unwrap()),
            ),
        ];
        for (name, run) in runs {
            let a = run(Backend::Thread);
            let b = run(Backend::Event);
            assert!(
                a.verified && b.verified,
                "seed {seed:#x} {name} case {case}"
            );
            assert_eq!(a.stats, b.stats, "seed {seed:#x} {name} counters");
            assert_eq!(
                a.max_peak_mem, b.max_peak_mem,
                "seed {seed:#x} {name} peak memory"
            );
            assert_eq!(
                a.makespan.to_bits(),
                b.makespan.to_bits(),
                "seed {seed:#x} {name} makespan"
            );
            assert_eq!(
                a.trace.digest(),
                b.trace.digest(),
                "seed {seed:#x} {name} canonical trace digest"
            );
        }
    }
}

#[test]
fn baseline_is_backend_equivalent() {
    let p = Conv2dProblem::square(8, 8, 8, 8, 3);
    let run = |backend| try_run_data_parallel(p, 4, 7, true, cfg_for(backend)).unwrap();
    let a = run(Backend::Thread);
    let b = run(Backend::Event);
    assert!(a.verified && b.verified);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.max_peak_mem, b.max_peak_mem);
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert_eq!(a.trace.digest(), b.trace.digest());
}

#[test]
fn event_backend_reproduces_the_golden_trace_digests() {
    // The committed goldens of tests/trace_determinism.rs, reproduced
    // on the event backend: the strongest single equivalence statement,
    // because the digest covers every span of every rank.
    const CONV_GOLDEN_DIGEST: u64 = 0x7872_a055_3ccd_7382;
    let p = Conv2dProblem::square(4, 16, 16, 8, 3);
    let plan = Planner::new(p, MachineSpec::new(8, 1 << 20))
        .plan()
        .unwrap();
    let report = DistConv::<f64>::new(plan)
        .with_config(cfg_for(Backend::Event))
        .run_verified(23)
        .unwrap();
    assert!(report.verified);
    assert_eq!(
        report.trace.digest(),
        CONV_GOLDEN_DIGEST,
        "event backend moved the conv golden digest (got {:#018x})",
        report.trace.digest()
    );
}

//! The matmul analogy, executed: a 1×1 stride-1 convolution *is* the
//! matrix product `Out[bhw×k] = In[bhw×c] · Ker[c×k]`. Run the paper's
//! CNN algorithm and the classic distributed matmuls on the same
//! computation and the same simulated machine, and compare measured
//! volumes.
//!
//! ```sh
//! cargo run --release --example matmul_analogy
//! ```

use distconv::core::DistConv;
use distconv::cost::{Conv2dProblem, MachineSpec, Planner};
use distconv::distmm::{run_25d, run_dns3d, run_summa, MatmulDims};
use distconv::simnet::MachineConfig;

fn main() {
    // 1×1 conv: bhw = 4·8·8 = 256 rows, c = 32 inner, k = 32 cols.
    let p = Conv2dProblem::new(4, 32, 32, 8, 8, 1, 1, 1, 1);
    let dims = MatmulDims::new(p.nbhw(), p.nk, p.nc);
    let cfg = MachineConfig::default();
    println!(
        "1×1 conv ≡ matmul: C[{}×{}] = A[{}×{}] · B[{}×{}]\n",
        dims.m, dims.n, dims.m, dims.k, dims.k, dims.n
    );
    println!(
        "{:<44} {:>6} {:>12} {:>9}",
        "algorithm", "P", "volume", "verified"
    );

    for (label, forced_pc) in [
        ("distconv, planner's grid", None),
        ("distconv, forced Pc=1 (SUMMA analog)", Some(1)),
        ("distconv, forced Pc=4 (2.5D/3D analog)", Some(4)),
    ] {
        let mut planner = Planner::new(p, MachineSpec::new(16, 1 << 22));
        if let Some(pc) = forced_pc {
            planner = planner.with_forced_pc(pc);
        }
        match planner.plan() {
            Ok(plan) => {
                let r = DistConv::<f64>::new(plan).run_verified(3).expect("ok");
                let g = plan.grid;
                println!(
                    "{:<44} {:>6} {:>12} {:>9}   grid {}x{}x{}x{}x{}",
                    label,
                    16,
                    r.measured_volume(),
                    r.verified,
                    g.pb,
                    g.pk,
                    g.pc,
                    g.ph,
                    g.pw
                );
            }
            Err(e) => println!("{label:<44} infeasible: {e}"),
        }
    }

    let s = run_summa(dims, 4, 4, cfg);
    println!(
        "{:<44} {:>6} {:>12} {:>9}   grid 4x4",
        "SUMMA-2D",
        s.procs,
        s.stats.total_elems(),
        s.verified
    );
    let s25 = run_25d(dims, 2, 4, cfg);
    println!(
        "{:<44} {:>6} {:>12} {:>9}   grid 4 layers of 2x2",
        "2.5D (c=4)",
        s25.procs,
        s25.stats.total_elems(),
        s25.verified
    );
    let s3 = run_dns3d(dims, 2, cfg);
    println!(
        "{:<44} {:>6} {:>12} {:>9}   grid 2x2x2",
        "3D (DNS)",
        s3.procs,
        s3.stats.total_elems(),
        s3.verified
    );

    println!(
        "\nReading: the CNN algorithm's (Pbhw × Pk) grid plays SUMMA's (rows × cols)\n\
         and Pc plays the replication depth; volumes land in the same band, and the\n\
         regime selected by the planner tracks the matmul family the paper names."
    );
}

//! A full training-step comparison: forward + weight gradient,
//! distributed two ways.
//!
//! * **Horovod-style data parallelism**: replicate the kernel, split the
//!   batch, all-reduce the gradient every step.
//! * **The paper's algorithm, extended to training** (`distconv-core`'s
//!   `run_training_step`): partitioned kernel, rotating broadcasts, and
//!   a gradient reduce-scatter that lands *shard-aligned* with the
//!   weights — no further movement before the optimizer update.
//!
//! Both are verified end-to-end against sequential references.
//!
//! ```sh
//! cargo run --release --example training_step
//! ```

use distconv::baselines::run_data_parallel;
use distconv::core::run_training_step;
use distconv::cost::{Conv2dProblem, MachineSpec, Planner};
use distconv::simnet::MachineConfig;

fn main() {
    let cfg = MachineConfig::default();
    let procs = 4;
    println!("P = {procs} (all volumes in elements per training step)\n");
    println!(
        "{:<26} {:>14} {:>16} {:>16} {:>9}",
        "layer", "dp fwd+grad", "distconv fwd", "distconv fwd+grad", "verified"
    );
    for (name, p) in [
        (
            "wide image (16², 16ch)",
            Conv2dProblem::square(4, 16, 16, 16, 3),
        ),
        ("mid (8², 32ch)", Conv2dProblem::square(4, 32, 32, 8, 3)),
        ("deep (4², 64ch)", Conv2dProblem::square(4, 64, 64, 4, 3)),
    ] {
        let dp = run_data_parallel(p, procs, 7, true, cfg);
        let plan = Planner::new(p, MachineSpec::new(procs, 1 << 22))
            .plan()
            .expect("plan");
        let tr = run_training_step::<f64>(plan, 7, cfg).expect("verified");
        println!(
            "{:<26} {:>14} {:>16} {:>16} {:>9}",
            name,
            dp.stats.total_elems(),
            tr.expected_forward.total(),
            tr.measured_volume(),
            dp.verified && tr.forward_verified && tr.grad_verified
        );
        assert_eq!(tr.measured_volume() as u128, tr.expected_total());
    }
    println!(
        "\nReading: the data-parallel step pays 2(P−1)|Ker| for the gradient\n\
         all-reduce plus the input scatter; the paper's distribution reuses its\n\
         forward broadcasts for the backward pass (the In term shrinks by the\n\
         k-tile count) and its gradient reduce-scatter is already shard-aligned.\n\
         On kernel-heavy layers the partitioned scheme moves less per step."
    );
}

//! The memory/communication Pareto frontier: all non-dominated
//! (memory, communication) points over the feasible processor grids of
//! one layer — and a measured run at each point proving the predicted
//! trade-off is real.
//!
//! ```sh
//! cargo run --release --example pareto_frontier [procs]
//! ```

use distconv::core::DistConv;
use distconv::cost::{Conv2dProblem, MachineSpec, Planner};

fn main() {
    let procs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let p = Conv2dProblem::new(4, 32, 32, 8, 8, 3, 3, 1, 1);
    let planner = Planner::new(p, MachineSpec::new(procs, 1 << 24));
    let frontier = planner.pareto_frontier();

    println!("layer {p:?}, P = {procs}");
    println!(
        "{} feasible grids, {} on the Pareto frontier\n",
        planner.enumerate().len(),
        frontier.len()
    );
    println!(
        "{:>18} {:>4} {:>8} {:>12} {:>12} {:>12} {:>9}",
        "grid (b,k,c,h,w)", "Pc", "regime", "memory g_D", "pred cost_D", "measured", "verified"
    );
    for plan in &frontier {
        let g = plan.grid;
        let r = DistConv::<f32>::new(*plan)
            .run_verified(3)
            .expect("verified");
        println!(
            "{:>18} {:>4} {:>8} {:>12.0} {:>12.0} {:>12} {:>9}",
            format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
            g.pc,
            plan.regime.name(),
            plan.predicted.footprint_gd,
            plan.predicted.cost_d,
            r.measured_volume(),
            r.verified,
        );
    }
    println!(
        "\nReading: each row needs more per-rank memory than the one above and\n\
         moves strictly less data — the 2D → 2.5D → 3D replication knob as a\n\
         queryable set. Pick the point matching your machine's memory, not just\n\
         the global optimum."
    );
}

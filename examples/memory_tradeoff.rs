//! The memory/communication trade-off: sweep the per-rank memory M_D
//! at fixed P and watch the planner's grid move through the 2D →
//! replicated (2.5D/3D) regimes while predicted and *measured* volumes
//! fall — the CNN incarnation of the matmul trade-off the paper builds
//! on.
//!
//! ```sh
//! cargo run --release --example memory_tradeoff
//! ```

use distconv::core::DistConv;
use distconv::cost::{Conv2dProblem, MachineSpec, Planner};

fn main() {
    // Channel-heavy layer at P = 16 so replication along c pays off.
    let p = Conv2dProblem::new(4, 32, 32, 8, 8, 3, 3, 1, 1);
    let procs = 16;
    println!("layer {p:?}, P = {procs}\n");
    println!(
        "{:>8} {:>14} {:>4} {:>8} {:>12} {:>12} {:>10}",
        "M_D", "grid", "Pc", "regime", "pred cost_D", "measured", "peak mem"
    );
    for shift in [11usize, 12, 13, 14, 16, 18, 20] {
        let mem = 1usize << shift;
        match Planner::new(p, MachineSpec::new(procs, mem)).plan() {
            Ok(plan) => {
                let r = DistConv::<f32>::new(plan)
                    .run_verified(7)
                    .expect("verified");
                let g = plan.grid;
                println!(
                    "{:>8} {:>14} {:>4} {:>8} {:>12.0} {:>12} {:>10}",
                    format!("2^{shift}"),
                    format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
                    g.pc,
                    plan.regime.name(),
                    plan.predicted.cost_d,
                    r.measured_volume(),
                    r.max_peak_mem(),
                );
            }
            Err(e) => println!("{:>8} infeasible: {e}", format!("2^{shift}")),
        }
    }
    println!(
        "\nReading: more memory → the planner replicates Out along c (Pc > 1),\n\
         trading memory for lower broadcast volume, exactly as 2.5D/3D matmul\n\
         trades replicated C copies for narrower panel broadcasts."
    );
}

//! Layer sweep: plan every ResNet-50 / VGG-16 layer at full scale and
//! chart the per-step communication of the paper's algorithm against
//! the data-parallel gradient all-reduce — the "who wins where" table.
//!
//! ```sh
//! cargo run --release --example resnet_sweep [batch] [procs]
//! ```

use distconv::cost::presets::{resnet50, vgg16};
use distconv::cost::{MachineSpec, Planner};

fn main() {
    let mut args = std::env::args().skip(1);
    let batch: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let procs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let mem = 1usize << 30; // 4 GiB of f32 words per rank

    println!("batch {batch}, P = {procs}, per-rank memory 2^30 words\n");
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>12} {:>8}  winner",
        "layer", "regime", "distconv C", "distconv D", "dp-allreduce", "ratio"
    );
    for layer in resnet50(batch).into_iter().chain(vgg16(batch)) {
        let p = layer.problem;
        match Planner::new(p, MachineSpec::new(procs, mem)).plan() {
            Ok(plan) => {
                // Horovod-style recurring cost: gradient all-reduce.
                let dp = 2.0 * p.size_ker() as f64 * (procs as f64 - 1.0) / procs as f64;
                let ratio = dp / plan.predicted.cost_c.max(1.0);
                println!(
                    "{:<22} {:>9} {:>12.0} {:>12.0} {:>12.0} {:>8.2}  {}",
                    layer.name,
                    plan.regime.name(),
                    plan.predicted.cost_c,
                    plan.predicted.cost_d,
                    dp,
                    ratio,
                    if plan.predicted.cost_c < dp {
                        "distconv"
                    } else {
                        "data-parallel"
                    }
                );
            }
            Err(e) => println!("{:<22} infeasible: {e}", layer.name),
        }
    }
    println!(
        "\nReading: early, image-heavy layers favor data parallelism (tiny kernels);\n\
         deep layers with big kernels and small images favor the paper's algorithm —\n\
         the crossover moves earlier as P grows."
    );
}

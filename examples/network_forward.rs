//! A multi-layer network, forward pass, fully distributed: each layer
//! gets its own optimal grid and the activations are redistributed
//! between grids. Shows the per-layer volumes, the redistribution tax,
//! and the end-to-end verification against a chained sequential
//! reference.
//!
//! ```sh
//! cargo run --release --example network_forward [procs]
//! ```

use distconv::core::{run_network, NetworkPlan};
use distconv::cost::{Conv2dProblem, MachineSpec};
use distconv::simnet::MachineConfig;

fn main() {
    let procs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    // A VGG-flavoured 4-layer chain, simulator-scaled:
    // 16×16 → 14×14 → 12×12 → 10×10 outputs, channels 4→16→32→32→16.
    let layers = vec![
        Conv2dProblem::new(2, 16, 4, 16, 16, 3, 3, 1, 1),
        Conv2dProblem::new(2, 32, 16, 14, 14, 3, 3, 1, 1),
        Conv2dProblem::new(2, 32, 32, 12, 12, 3, 3, 1, 1),
        Conv2dProblem::new(2, 16, 32, 10, 10, 3, 3, 1, 1),
    ];

    let plan =
        NetworkPlan::plan(&layers, MachineSpec::new(procs, 1 << 22)).expect("network plannable");
    println!("P = {procs}\n");
    println!(
        "{:<8} {:>24} {:>8} {:>14} {:>14}",
        "layer", "grid (b,k,c,h,w)", "regime", "fwd volume", "redist after"
    );
    for (i, lp) in plan.layers.iter().enumerate() {
        let g = lp.grid;
        let fwd = distconv::core::expected_volumes(lp).total();
        let redist = plan
            .redist_volumes
            .get(i)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<8} {:>24} {:>8} {:>14} {:>14}",
            format!("conv{i}"),
            format!("{}x{}x{}x{}x{}", g.pb, g.pk, g.pc, g.ph, g.pw),
            lp.regime.name(),
            fwd,
            redist
        );
    }

    let r = run_network::<f32>(&plan, 7, MachineConfig::default()).expect("verified");
    println!();
    println!("verified end-to-end : {}", r.verified);
    println!(
        "measured total      : {} elems (expected {}, exact match {})",
        r.stats.total_elems(),
        r.expected_total(),
        r.stats.total_elems() as u128 == r.expected_total()
    );
    println!(
        "redistribution share: {:.1}% of total traffic",
        100.0 * r.expected_redist as f64 / r.expected_total() as f64
    );
    println!("peak memory         : {} elems/rank", r.max_peak_mem);
    println!(
        "\nReading: per-layer optimal grids differ (early layers split pixels,\n\
         late layers split channels/features), and the activation redistribution\n\
         between grids is a real, measured cost the single-layer theory does not\n\
         model — reported here as a first-class line item."
    );
}

//! Quickstart: plan one layer, run it on the simulated machine, and
//! compare predicted against measured communication.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distconv::core::DistConv;
use distconv::cost::{Conv2dProblem, MachineSpec, Planner};

fn main() {
    // A ResNet-shaped layer, scaled to run in a second: batch 4,
    // 32 -> 32 features, 16x16 output, 3x3 kernel, stride 1.
    let problem = Conv2dProblem::new(4, 32, 32, 16, 16, 3, 3, 1, 1);
    // 16 simulated ranks, 2^20 words (4 MiB of f32) each.
    let machine = MachineSpec::new(16, 1 << 20);

    // Step 1+2 (paper Sec. 2.1): solve the two-level tile-size
    // optimization and pick the processor grid.
    let plan = Planner::new(problem, machine)
        .plan()
        .expect("feasible plan");
    println!("layer            : {problem:?}");
    println!(
        "grid  Pb,Pk,Pc,Ph,Pw : {}x{}x{}x{}x{}  (regime: {})",
        plan.grid.pb,
        plan.grid.pk,
        plan.grid.pc,
        plan.grid.ph,
        plan.grid.pw,
        plan.regime.name()
    );
    println!(
        "work  Wb,Wk,Wc,Wh,Ww : {},{},{},{},{}",
        plan.w.wb, plan.w.wk, plan.w.wc, plan.w.wh, plan.w.ww
    );
    println!(
        "tiles Tb,Tk,Tc,Th,Tw : {},{},{},{},{}",
        plan.t.tb, plan.t.tk, plan.t.tc, plan.t.th, plan.t.tw
    );
    println!(
        "predicted (Eq.10)    : cost_I {:.0} + cost_C {:.0} = cost_D {:.0} elems/rank",
        plan.predicted.cost_i, plan.predicted.cost_c, plan.predicted.cost_d
    );

    // Step 3+4 (Sec. 2.2): distribute, execute with the rotating
    // broadcast schedule, reduce, and verify against the sequential
    // reference.
    let report = DistConv::<f32>::new(plan)
        .run_verified(42)
        .expect("distributed result must match the sequential reference");

    println!();
    println!("verified             : {}", report.verified);
    println!(
        "measured traffic     : {} elems total ({:.0} per rank)",
        report.measured_volume(),
        report.measured_volume() as f64 / 16.0
    );
    println!(
        "schedule model       : {} elems (exact match: {})",
        report.expected.total(),
        report.expected.total() == report.measured_volume() as u128
    );
    println!(
        "peak memory          : {} elems/rank (Eq.11 budget: {:.0})",
        report.max_peak_mem(),
        report.plan.predicted.footprint_gd
    );
    println!("simulated comm time  : {:.3} ms", report.sim_time * 1e3);

    assert!(report.verified);
    assert_eq!(report.measured_volume() as u128, report.expected.total());
}
